"""repro — Causality-Guided Adaptive Interventional Debugging (AID).

A faithful reimplementation of Fariha, Nath & Meliou, *Causality-Guided
Adaptive Interventional Debugging*, SIGMOD 2020 (arXiv:2003.09539),
including every substrate the paper depends on:

* ``repro.sim`` — a deterministic, seeded concurrent-program simulator
  (threads, locks, shared memory, virtual time, tracing, fault
  injection) standing in for the paper's CLR-instrumented applications;
* ``repro.core`` — the AID pipeline: predicates, statistical debugging,
  the Approximate Causal DAG, and the causality-guided group
  intervention algorithms (GIWP, branch pruning, causal path
  discovery), plus the TAGT/LINEAR baselines, the AID-P / AID-P-B
  ablations, and the Section 6 theory;
* ``repro.workloads`` — the six case-study bugs of Section 7.1 as model
  programs with known ground truth, and the Section 7.2 synthetic
  application generator;
* ``repro.exec`` — the intervention-execution engine: pluggable
  serial/thread/process backends, outcome memoization with JSON
  persistence, and execution statistics;
* ``repro.corpus`` — the persistent trace-corpus store:
  content-addressed dedup, a bitset-backed predicate-evaluation memo,
  and incremental SD + AC-DAG maintenance under log ingestion;
* ``repro.harness`` — corpus collection, end-to-end sessions, and the
  drivers that regenerate every table and figure of the evaluation;
* ``repro.api`` — the declarative front door: serializable
  :class:`RunSpec` configs, plugin registries, the observer/event
  protocol, and ``repro.run(spec)`` returning a report with a
  versioned JSON schema.

Quickstart::

    import repro

    report = repro.run(repro.RunSpec(workload=repro.WorkloadSpec("npgsql")))
    print(report.explanation.render())

    # or, imperatively:
    report = repro.debug(repro.load_workload("npgsql").program)
"""

from .exec import (
    ExecStats,
    ExecutionEngine,
    OutcomeCache,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    make_backend,
)
from .core import (
    ACDag,
    Approach,
    DiscoveryResult,
    Explanation,
    GIWP,
    PredicateSuite,
    StatisticalDebugger,
    all_approaches,
    causal_path_discovery,
    discover,
    explain,
)
from .corpus import (
    CorpusSession,
    EvalMatrix,
    IncrementalPipeline,
    TraceStore,
)
from .harness import (
    AIDSession,
    SessionConfig,
    SessionReport,
    collect,
    debug,
    figure7,
    figure8,
)
from .sim import Program, SimContext, Simulator, run_program
from .workloads import REGISTRY, Workload, generate_app
from .api import (  # noqa: E402 — must follow the subsystem imports
    AnalysisSpec,
    CollectionSpec,
    CorpusSpec,
    EngineSpec,
    EventBus,
    EventLog,
    Observer,
    REPORT_SCHEMA_VERSION,
    Registry,
    RegistryError,
    RunSpec,
    SpecError,
    WorkloadSpec,
    run,
    validate_report_dict,
)

__version__ = "1.1.0"

__all__ = [
    "ACDag",
    "AIDSession",
    "AnalysisSpec",
    "Approach",
    "CollectionSpec",
    "CorpusSpec",
    "EngineSpec",
    "EventBus",
    "EventLog",
    "Observer",
    "REPORT_SCHEMA_VERSION",
    "Registry",
    "RegistryError",
    "RunSpec",
    "SpecError",
    "WorkloadSpec",
    "run",
    "validate_report_dict",
    "CorpusSession",
    "DiscoveryResult",
    "EvalMatrix",
    "ExecStats",
    "IncrementalPipeline",
    "TraceStore",
    "ExecutionEngine",
    "Explanation",
    "GIWP",
    "OutcomeCache",
    "PredicateSuite",
    "ProcessPoolBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "Program",
    "REGISTRY",
    "SessionConfig",
    "SessionReport",
    "SimContext",
    "Simulator",
    "StatisticalDebugger",
    "Workload",
    "all_approaches",
    "causal_path_discovery",
    "collect",
    "debug",
    "discover",
    "explain",
    "figure7",
    "figure8",
    "generate_app",
    "load_workload",
    "make_backend",
    "run_program",
    "__version__",
]


def load_workload(name: str) -> Workload:
    """Build one of the bundled case-study workloads by name.

    Names: ``npgsql``, ``kafka``, ``cosmosdb``, ``network``,
    ``buildandtest``, ``healthtelemetry``.
    """
    return REGISTRY.build(name)
