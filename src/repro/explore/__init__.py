"""``repro.explore`` — pluggable schedule-space exploration.

The simulator's scheduling decisions flow through one seam
(:class:`~repro.sim.schedule.SchedulerStrategy`); this package supplies
the systematic search policies that plug into it (PCT and delay-bounded
scheduling, :mod:`repro.explore.strategies`) and the coverage-guided
fuzzing loop that drives them (:mod:`repro.explore.driver`): frontier of
novel interleavings, prefix-replay mutation, corpus ingestion of every
novel failing schedule, and on-the-spot replay verification.

Entry points: :func:`explore` / :class:`ExplorationDriver` from Python,
``repro explore`` from the CLI, ``collection.strategy`` in a
:class:`~repro.api.spec.RunSpec` to run a whole debugging session under
a non-default strategy.
"""

from .driver import (
    EXPLORE_SCHEMA_VERSION,
    ExplorationDriver,
    ExplorationResult,
    ExploreConfig,
    FoundFailure,
    WaveObservation,
    WavePlan,
    explore,
)
from .strategies import DEFAULT_HORIZON, DelayStrategy, PCTStrategy

__all__ = [
    "DEFAULT_HORIZON",
    "DelayStrategy",
    "EXPLORE_SCHEMA_VERSION",
    "ExplorationDriver",
    "ExplorationResult",
    "ExploreConfig",
    "FoundFailure",
    "PCTStrategy",
    "WaveObservation",
    "WavePlan",
    "explore",
]
