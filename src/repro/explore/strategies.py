"""Systematic scheduling strategies: PCT and delay-bounded exploration.

Role
----
These are the schedule-space search policies that plug into the
simulator's :class:`~repro.sim.schedule.SchedulerStrategy` seam
(registered as ``pct`` and ``delay`` in
:data:`repro.api.registry.strategies`, next to ``random`` and
``replay``).  Where the default strategy samples interleavings
uniformly, these concentrate probability mass on the schedules that
empirically reveal ordering bugs:

* :class:`PCTStrategy` — *Probabilistic Concurrency Testing* (Burckhardt
  et al., ASPLOS'10): every thread gets a random priority, the highest
  ready priority always runs, and at ``depth - 1`` random change points
  the running thread's priority drops below everyone else's.  A bug of
  depth *d* is found with probability ≥ 1/(n·k^(d-1)) per run — far
  better than uniform sampling for small depths.
* :class:`DelayStrategy` — delay-bounded scheduling (Emmi et al.,
  POPL'11): a deterministic baseline scheduler (first ready thread in
  spawn order) perturbed by at most ``delays`` deferrals at seeded
  decision points.  The schedule space within a small delay budget is
  tiny, so sweeping seeds enumerates systematically-near schedules.

Invariants
----------
* fully deterministic per ``(seed, params)`` — same strategy + seed
  always yields the identical trace (asserted in tests);
* both strategies only ever return members of ``point.candidates``;
* priorities/choices never read wall-clock or global state, so
  exploration results are reproducible across hosts and job counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from ..sim.schedule import SchedulePoint, SchedulerStrategy

#: Default number of scheduling decisions priority-change/delay points
#: are sampled from.  Executions longer than the horizon simply see no
#: further perturbation; shorter ones waste a few sampled points.
DEFAULT_HORIZON = 1_000


@dataclass
class PCTStrategy:
    """PCT-style priority scheduling with depth bound ``depth``.

    Threads receive distinct random base priorities in ``(1, 2)`` on
    first sight (arrival order is deterministic); the highest-priority
    ready thread always runs.  At each of the ``depth - 1`` seeded
    change points, the thread just scheduled falls to a fresh priority
    below every other — forcing the scheduler to expose orderings a
    strict priority run would never produce.
    """

    seed: int
    depth: int = 3
    horizon: int = DEFAULT_HORIZON
    rng: Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError(f"pct depth must be >= 1, got {self.depth}")
        if self.horizon < 1:
            raise ValueError(
                f"pct horizon must be >= 1, got {self.horizon}"
            )
        self.rng = Random(self.seed)
        self._priorities: dict[str, float] = {}
        self._floor = 0.0
        n_changes = min(max(0, self.depth - 1), self.horizon)
        self._change_points = frozenset(
            self.rng.sample(range(1, self.horizon + 1), n_changes)
        )

    def choose(self, point: SchedulePoint) -> str:
        for name in point.candidates:
            if name not in self._priorities:
                self._priorities[name] = 1.0 + self.rng.random()
        chosen = max(point.candidates, key=self._priorities.__getitem__)
        if point.index in self._change_points:
            # Priority-change point: the running thread drops below
            # every priority handed out so far (and every future drop).
            self._floor -= 1.0
            self._priorities[chosen] = self._floor
        return chosen


@dataclass
class DelayStrategy:
    """Delay-bounded exploration with budget ``delays``.

    The baseline is the deterministic "first ready thread in spawn
    order" scheduler; at up to ``delays`` seeded decision points the
    baseline pick is deferred once, running the next ready thread
    instead.  With a budget of *k* the strategy stays within Hamming
    distance *k* of the baseline schedule — the delay-bounding
    discipline that finds most real ordering bugs at tiny budgets.
    """

    seed: int
    delays: int = 2
    horizon: int = DEFAULT_HORIZON
    rng: Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.delays < 0:
            raise ValueError(
                f"delay budget must be >= 0, got {self.delays}"
            )
        if self.horizon < 1:
            raise ValueError(
                f"delay horizon must be >= 1, got {self.horizon}"
            )
        self.rng = Random(self.seed)
        n_delays = min(self.delays, self.horizon)
        self._delay_points = frozenset(
            self.rng.sample(range(self.horizon), n_delays)
        )

    def choose(self, point: SchedulePoint) -> str:
        if point.index in self._delay_points and len(point.candidates) > 1:
            return point.candidates[1]
        return point.candidates[0]


@dataclass
class SwapTail:
    """Follow a desired thread order as closely as readiness allows.

    The directed-mutation tail used by wave exploration: the driver
    replays a parent schedule up to a recorded *branch point* and this
    strategy takes over with a ``queue`` of desired picks — the
    candidate the parent did not take, hoisted to the front, followed
    by the parent's own remaining decisions (minus the hoisted
    thread's old slot).  Each decision schedules the earliest queued
    thread that is ready and consumes it, so the run executes the
    parent's continuation with exactly one dependence pair reversed —
    the DPOR backtrack move — instead of wandering off on a random
    suffix that mostly resamples already-seen equivalence classes.

    Threads not in the queue (or queued picks never ready again) fall
    back to a seeded-random choice, keeping the strategy total.
    """

    queue: tuple[str, ...]
    seed: int
    rng: Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.rng = Random(self.seed)
        self._pending = list(self.queue)

    def choose(self, point: SchedulePoint) -> str:
        for i, name in enumerate(self._pending):
            if name in point.candidates:
                del self._pending[i]
                return name
        return point.candidates[
            self.rng.randrange(len(point.candidates))
        ]
