"""Coverage-guided, wave-parallel schedule-space exploration.

Role
----
The fuzzing loop of :mod:`repro.explore`: run the simulator under a
pluggable strategy, fingerprint each execution's *interleaving*
(:meth:`~repro.sim.schedule.Schedule.signature`), keep a frontier of
coverage-increasing schedules, and mutate frontier members (replay a
prefix, explore a fresh tail) to push into unseen handoff orderings.
Every novel failing interleaving becomes two durable artifacts:

* its trace, ingested into a :class:`~repro.corpus.store.TraceStore`
  (through the :class:`~repro.corpus.pipeline.IncrementalPipeline` once
  the store can bootstrap one, so the corpus's SD counts, FD set, and
  AC-DAG stay patched as failures stream in);
* its recorded :class:`~repro.sim.schedule.Schedule`, replay-verified
  on the spot and optionally saved to disk — the reproducer.

Waves
-----
Executions dispatch in *waves* of ``config.wave`` plans through an
:class:`~repro.exec.engine.ExecutionEngine`, so ``--jobs N`` fans the
simulator across threads or forked processes.  Determinism survives
parallelism because the protocol is plan-ahead/observe-in-order:

* every random draw (mutate-or-fresh, parent pick, prefix cut) happens
  in the parent *while planning the wave*, before anything runs;
* a plan is a picklable spec — a registered strategy name rebuilt from
  ``(name, params, seed)`` in the worker, or a recorded
  :class:`~repro.sim.schedule.Schedule` plus prefix cut and tail seed;
* the backend's ``map`` is order-preserving, and observations are
  applied strictly in submission order.

The wave size is a fixed config value, *independent of the job count*,
so planning boundaries (and therefore mutation parents) are identical
whatever the parallelism — the result payload is byte-identical across
``--jobs 1`` / ``--jobs 8`` and across backends (asserted in tests).

Partial-order pruning
---------------------
Each execution also gets a *canonical* signature
(:meth:`~repro.sim.schedule.Schedule.canonical_signature`): the normal
form of its Mazurkiewicz equivalence class, where adjacent decisions of
threads touching disjoint resources commute.  Search state dedupes by
class — an execution whose class was already explored earns no frontier
slot, no mutation energy, and no pass-ingestion (surfaced as
``pruned_equivalent`` in the payload and ``equivalent-pruned`` events).
Failures are *never* pruned: they stay keyed by exact signature, since
commuting decisions can still shift virtual timestamps.

Coverage signal
---------------
An execution's coverage is its set of thread-handoff edges
(``Schedule.transitions()``: which thread ran immediately after which).
The alphabet is tiny and saturates fast on small programs — exactly the
property a frontier needs: once edges stop appearing, mutation energy
concentrates on reorderings of known edges, which is where the
canonical signature keeps discriminating.

Invariants
----------
* a driver run is a pure function of ``(config, program)`` *minus* the
  ``jobs``/``backend`` knobs: all randomness flows from
  ``Random(config.start_seed)`` and the per-execution seeds
  ``start_seed + i`` (asserted in tests);
* observers never affect results — events mirror state changes that
  already happened (the :mod:`repro.api.events` contract);
* every reported failure's schedule replays to the recorded trace
  fingerprint when ``verify_replays`` is on (asserted per failure and
  surfaced per-failure in the result payload);
* corpus ingestion is batched per wave
  (:meth:`~repro.corpus.pipeline.IncrementalPipeline.ingest_batch`) —
  one counter update, one FD derivation, one DAG restriction per wave,
  byte-identical to per-trace ingestion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import TYPE_CHECKING, Optional

from ..sim.schedule import RandomStrategy, ReplayStrategy, Schedule
from ..sim.scheduler import DEFAULT_MAX_STEPS, Simulator
from ..sim.serialize import stable_digest, trace_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.events import EventBus
    from ..corpus.store import TraceStore
    from ..sim.program import Program

#: version of the ``repro explore --json`` payload
EXPLORE_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class ExploreConfig:
    """Knobs for one exploration run.

    ``jobs`` and ``backend`` are *throughput* knobs: they change
    wall-clock time only, never the result payload.  ``wave`` and
    ``partial_order`` are *search* knobs and do shape the result.
    """

    #: total executions to spend
    budget: int = 200
    #: registered strategy driving *fresh* (non-mutated) executions
    strategy: str = "random"
    strategy_params: dict = field(default_factory=dict)
    start_seed: int = 0
    max_steps: int = DEFAULT_MAX_STEPS
    #: probability a run mutates a frontier schedule instead of running
    #: the strategy fresh (0 disables mutation entirely)
    mutation_rate: float = 0.5
    #: most coverage-increasing schedules kept for mutation (FIFO)
    frontier_cap: int = 64
    #: passing traces ingested into the corpus (novel-coverage ones
    #: first) — enough for the pipeline to bootstrap, without flooding
    #: the store with near-duplicate successes
    max_pass_ingest: int = 25
    #: emit a frontier-stats event every N executions (0 disables)
    stats_every: int = 50
    #: re-run every novel failure from its recorded schedule and check
    #: the trace fingerprint matches
    verify_replays: bool = True
    #: directory to save one ``<signature>.json`` schedule per novel
    #: failure (``None`` = keep schedules in memory only)
    schedule_dir: Optional[str] = None
    #: executions planned per dispatch wave — fixed and independent of
    #: ``jobs``, so planning boundaries (and results) never depend on
    #: the parallelism
    wave: int = 16
    #: worker count for the execution backend (1 = serial)
    jobs: int = 1
    #: backend name (``None``: serial when ``jobs <= 1``, else threads)
    backend: Optional[str] = None
    #: dedupe frontier admission, mutation energy, and pass-ingestion
    #: by Mazurkiewicz equivalence class instead of exact interleaving
    partial_order: bool = True


@dataclass(frozen=True)
class WavePlan:
    """One planned execution: everything a worker needs, picklable.

    Fresh runs rebuild their strategy from the driver's registered
    ``(strategy, params)`` and this plan's seed; mutations carry the
    recorded parent :class:`~repro.sim.schedule.Schedule`, the prefix
    cut, and the tail seed.  All RNG draws happened at planning time.
    """

    index: int
    seed: int
    mutated: bool
    parent: Optional[Schedule] = None
    prefix: Optional[int] = None
    tail_seed: Optional[int] = None
    #: directed mutation: the candidate the worker must schedule at
    #: decision ``prefix`` instead of the parent's recorded choice
    #: (None = plain prefix-cut mutation with a random tail)
    force: Optional[str] = None


@dataclass
class WaveObservation:
    """What one worker saw: the picklable result of executing a plan."""

    index: int
    seed: int
    mutated: bool
    diverged: bool
    trace: object  # ExecutionTrace (plain data, picklable)
    schedule: Schedule
    footprints: tuple
    #: decision indices where more than one thread was ready — the
    #: branch points directed mutation can flip
    branches: tuple = ()


class _BranchRecorder:
    """Strategy wrapper that notes every decision index with more than
    one ready thread (and who was ready) — the branch points directed
    mutation can flip.  Purely observational: the inner strategy's
    choices pass through untouched, so recorded schedules and traces
    are unaffected."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.branches: list[tuple[int, tuple[str, ...]]] = []

    def choose(self, point) -> str:
        if len(point.candidates) > 1:
            self.branches.append((point.index, tuple(point.candidates)))
        return self.inner.choose(point)


def relevant_flips(
    decisions, footprints, branches
) -> tuple[tuple[int, str], ...]:
    """The dependence-relevant backtrack points of one execution.

    For each recorded branch ``(b, candidates)`` and each candidate
    ``c`` the schedule did *not* take there, flipping the decision to
    ``c`` hoists ``c``'s next action from its later slot ``j`` across
    decisions ``b..j-1``.  By Mazurkiewicz equivalence that lands in a
    *different* class only if the hoisted action conflicts with (or is
    ordered by a barrier against) something it crosses — otherwise the
    flip merely commutes independent decisions and re-executes the
    same class.  This is the DPOR backtrack-set computation, applied
    as a mutation filter: only class-changing flips are worth budget.

    A candidate that never ran again is kept unconditionally — its
    behavior past ``b`` is entirely unobserved.
    """
    from ..sim.schedule import footprints_conflict

    flips: list[tuple[int, str]] = []
    if len(footprints) != len(decisions):
        # No independence information (e.g. a replayed schedule from
        # disk): every flip is potentially relevant.
        return tuple(
            (b, c)
            for b, candidates in branches
            for c in candidates
            if c != decisions[b]
        )
    n = len(decisions)
    for b, candidates in branches:
        chosen = decisions[b]
        for c in candidates:
            if c == chosen:
                continue
            j = next(
                (k for k in range(b + 1, n) if decisions[k] == c), None
            )
            if j is None:
                flips.append((b, c))
                continue
            if any(
                footprints_conflict(footprints[j], footprints[k])
                or ("*", True) in footprints[j]
                or ("*", True) in footprints[k]
                for k in range(b, j)
            ):
                flips.append((b, c))
    return tuple(flips)


@dataclass
class FoundFailure:
    """One novel failing interleaving and its reproducer."""

    schedule: Schedule
    signature: str  # schedule (interleaving) signature
    failure_signature: str
    seed: int
    fingerprint: str  # trace content fingerprint
    replay_verified: Optional[bool] = None  # None = not verified
    path: Optional[str] = None  # saved schedule file, if any

    def to_dict(self) -> dict:
        return {
            "signature": self.signature,
            "failure_signature": self.failure_signature,
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "replay_verified": self.replay_verified,
            "path": self.path,
            "decisions": len(self.schedule),
        }


@dataclass
class ExplorationResult:
    """Everything one exploration run learned.

    Deliberately excludes ``jobs``/``backend``: the payload must be
    byte-identical whatever the parallelism.
    """

    program: str
    strategy: str
    budget: int
    wave: int = 0
    partial_order: bool = True
    executions: int = 0
    n_failed: int = 0
    distinct_signatures: int = 0
    distinct_failing_signatures: int = 0
    #: distinct Mazurkiewicz classes among the executions
    distinct_canonical: int = 0
    #: executions whose equivalence class had already been explored
    pruned_equivalent: int = 0
    coverage_edges: int = 0
    frontier_size: int = 0
    ingested_pass: int = 0
    ingested_fail: int = 0
    failures: list[FoundFailure] = field(default_factory=list)

    @property
    def all_replays_verified(self) -> bool:
        """Whether every verified failure replayed byte-identically
        (vacuously true when verification was off)."""
        return all(
            f.replay_verified is not False for f in self.failures
        )

    def to_dict(self) -> dict:
        return {
            "schema": EXPLORE_SCHEMA_VERSION,
            "program": self.program,
            "strategy": self.strategy,
            "budget": self.budget,
            "wave": self.wave,
            "partial_order": self.partial_order,
            "executions": self.executions,
            "n_failed": self.n_failed,
            "distinct_signatures": self.distinct_signatures,
            "distinct_failing_signatures": self.distinct_failing_signatures,
            "distinct_canonical": self.distinct_canonical,
            "pruned_equivalent": self.pruned_equivalent,
            "coverage_edges": self.coverage_edges,
            "frontier_size": self.frontier_size,
            "ingested": {
                "pass": self.ingested_pass,
                "fail": self.ingested_fail,
            },
            "failures_found": len(self.failures),
            "all_replays_verified": self.all_replays_verified,
            "failures": [f.to_dict() for f in self.failures],
        }


class ExplorationDriver:
    """The wave-parallel exploration loop (see the module docstring).

    ``store`` is optional: without one, exploration still finds and
    verifies failures, it just keeps no durable corpus.  With one, every
    novel failing trace (plus a bounded sample of passes) is ingested —
    batched per wave through
    :meth:`~repro.corpus.pipeline.IncrementalPipeline.ingest_batch` as
    soon as the store holds both labels, so the maintained analysis
    views patch along at one update per wave.
    """

    def __init__(
        self,
        program: "Program",
        config: Optional[ExploreConfig] = None,
        store: Optional["TraceStore"] = None,
        bus: Optional["EventBus"] = None,
    ) -> None:
        self.program = program
        self.config = config or ExploreConfig()
        if self.config.wave < 1:
            raise ValueError(
                f"wave size must be >= 1, got {self.config.wave}"
            )
        self.store = store
        self.bus = bus
        self.simulator = Simulator(
            program, max_steps=self.config.max_steps
        )
        #: interleaving signatures of every execution seen
        self.seen: set[str] = set()
        #: Mazurkiewicz class -> executions observed in it
        self.canonical_seen: dict[str, int] = {}
        #: signatures that failed (novelty filter for failure artifacts)
        self.failing_seen: set[str] = set()
        #: trace fingerprints of recorded failures — two interleavings
        #: can serialize to the identical trace (the differing
        #: decisions leave no observable event), and a second schedule
        #: reproducing the same trace adds no reproducer value
        self._failure_fingerprints: set[str] = set()
        #: handoff edges covered so far
        self.coverage: set[tuple[str, str]] = set()
        #: coverage-increasing schedules, mutation fodder — the deque
        #: cap makes eviction O(1) where a list's pop(0) was O(n)
        self.frontier: deque[Schedule] = deque(
            maxlen=self.config.frontier_cap
        )
        #: exact signature -> dependence-relevant flips of an admitted
        #: schedule (see :func:`relevant_flips`); what directed
        #: mutation spends budget on.  Grows with distinct admitted
        #: signatures — bounded by the budget, tiny tuples, so no
        #: eviction needed.
        self._flips: dict[str, tuple[tuple[int, str], ...]] = {}
        #: (signature, branch, forced choice) triples already planned —
        #: a flip is attempted at most once, like a DPOR backtrack set
        self._flips_tried: set[tuple[str, int, str]] = set()
        self.pipeline = None  # lazily bootstrapped IncrementalPipeline
        self._rng = Random(self.config.start_seed)
        #: (trace, schedule signature, "pass"|"fail") awaiting the
        #: current wave's batched ingestion
        self._wave_candidates: list[tuple[object, str, str]] = []
        self._pending_pass = 0
        self._factory = None  # set in run(); workers rebuild from it
        #: mutation-energy accounting (partial-order pruning): how many
        #: mutations ran, and how many landed in a novel class
        self._mutations = 0
        self._mutations_novel = 0

    def _emit(self, event) -> None:
        if self.bus is not None:
            self.bus.emit(event)

    # -- the loop --------------------------------------------------------

    def run(self) -> ExplorationResult:
        from ..api.events import ExplorationFinished, ExplorationStarted
        from ..api.registry import strategy_factory
        from ..exec.engine import ExecutionEngine

        cfg = self.config
        self._factory = strategy_factory(cfg.strategy, cfg.strategy_params)
        result = ExplorationResult(
            program=self.program.name,
            strategy=cfg.strategy,
            budget=cfg.budget,
            wave=cfg.wave,
            partial_order=cfg.partial_order,
        )
        self._emit(
            ExplorationStarted(
                program=self.program.name,
                strategy=cfg.strategy,
                budget=cfg.budget,
            )
        )
        engine = ExecutionEngine.from_options(
            jobs=cfg.jobs, backend=cfg.backend
        )
        try:
            done = 0
            while done < cfg.budget:
                count = min(cfg.wave, cfg.budget - done)
                plans = [self._plan(done + k) for k in range(count)]
                observations = engine.execute(plans, self._run_plan)
                for observation in observations:
                    self._observe(observation, result)
                    if (
                        cfg.stats_every
                        and result.executions % cfg.stats_every == 0
                    ):
                        self._emit_stats(result)
                self._ingest_wave(result)
                done += count
        finally:
            engine.close()
        result.coverage_edges = len(self.coverage)
        result.frontier_size = len(self.frontier)
        result.distinct_signatures = len(self.seen)
        result.distinct_failing_signatures = len(self.failing_seen)
        result.distinct_canonical = len(self.canonical_seen)
        self._persist()
        self._emit(
            ExplorationFinished(
                executions=result.executions,
                failures_found=len(result.failures),
                distinct_signatures=result.distinct_signatures,
                distinct_failing_signatures=(
                    result.distinct_failing_signatures
                ),
                coverage_edges=result.coverage_edges,
                distinct_canonical=result.distinct_canonical,
                pruned_equivalent=result.pruned_equivalent,
            )
        )
        return result

    # -- planning (parent only, all RNG here) ----------------------------

    def _plan(self, i: int) -> WavePlan:
        """Mutate a frontier schedule, or run the base strategy fresh.

        Consumes the driver RNG exactly like the historical serial
        ``_next_strategy`` did (``randrange(len)`` indexing draws the
        same underlying bits as ``choice``), so plans — and therefore
        results — are independent of how the wave later executes.
        """
        cfg = self.config
        seed = cfg.start_seed + i
        rate = cfg.mutation_rate
        if cfg.partial_order and self._mutations:
            # Withhold energy from mutation when it stops paying:
            # scale the rate by the fraction of past mutations that
            # reached a *novel* equivalence class, so saturated-class
            # budget flows back into fresh strategy seeds.  Uses only
            # observations from completed waves — deterministic for
            # any job count.
            novel_frac = self._mutations_novel / self._mutations
            rate *= max(0.1, novel_frac)
        if cfg.partial_order:
            # Directed mutation: spend each plan on one untried
            # *dependence-relevant* flip from anywhere in the frontier
            # — replay to a recorded branch point, schedule a candidate
            # whose hoisted action conflicts with the parent's
            # continuation, then follow the parent's remaining order
            # (the DPOR backtrack move; lands in a provably different
            # equivalence class).  Each flip is attempted at most
            # once; when the pool is dry, budget flows back into
            # fresh strategy seeds — blind prefix-cut mutations mostly
            # resample already-seen classes.
            pool = self._untried_flips()
            if pool and self._rng.random() < rate:
                parent, sig, b, c = pool[self._rng.randrange(len(pool))]
                self._flips_tried.add((sig, b, c))
                return WavePlan(
                    index=i,
                    seed=seed,
                    mutated=True,
                    parent=parent,
                    prefix=b,
                    tail_seed=seed,
                    force=c,
                )
            return WavePlan(index=i, seed=seed, mutated=False)
        if self.frontier and self._rng.random() < rate:
            parent = self.frontier[self._rng.randrange(len(self.frontier))]
            if len(parent) > 0:
                cut = self._rng.randrange(1, len(parent) + 1)
                return WavePlan(
                    index=i,
                    seed=seed,
                    mutated=True,
                    parent=parent,
                    prefix=cut,
                    tail_seed=seed,
                )
        return WavePlan(index=i, seed=seed, mutated=False)

    def _untried_flips(self) -> list[tuple[Schedule, str, int, str]]:
        """Every (parent, signature, branch, choice) flip not yet
        attempted, in frontier order — the directed-mutation pool."""
        pool: list[tuple[Schedule, str, int, str]] = []
        for parent in self.frontier:
            sig = parent.signature()
            for b, c in self._flips.get(sig, ()):
                if (sig, b, c) not in self._flips_tried:
                    pool.append((parent, sig, b, c))
        return pool

    # -- execution (workers; must not read mutable driver state) ---------

    def _run_plan(self, plan: WavePlan) -> WaveObservation:
        """Execute one plan.  Runs in a worker under thread/process
        backends: reads only the plan and state frozen before the first
        wave (program, simulator, strategy factory)."""
        from .strategies import SwapTail

        if plan.parent is not None:
            if plan.force is not None:
                # Desired order past the branch: the forced candidate,
                # then the parent's remaining decisions minus the
                # forced thread's old slot (it was hoisted, not added).
                rest = list(plan.parent.decisions[plan.prefix :])
                for k in range(1, len(rest)):
                    if rest[k] == plan.force:
                        del rest[k]
                        break
                tail = SwapTail(
                    queue=(plan.force, *rest), seed=plan.tail_seed
                )
            else:
                tail = RandomStrategy(plan.tail_seed)
            strategy = ReplayStrategy(
                schedule=plan.parent, prefix=plan.prefix, tail=tail
            )
        else:
            strategy = self._factory(plan.seed)
        # A forced flip must re-execute the parent's run exactly up to
        # the branch, so it runs under the parent's recorded seed (the
        # program's own behavior is seed-dependent); plain mutations
        # keep the historical fresh-seed semantics.
        run_seed = (
            plan.parent.seed
            if plan.parent is not None and plan.force is not None
            else plan.seed
        )
        recorder = _BranchRecorder(strategy)
        execution = self.simulator.run(run_seed, strategy=recorder)
        return WaveObservation(
            index=plan.index,
            seed=plan.seed,
            mutated=plan.mutated,
            diverged=bool(getattr(strategy, "diverged", False)),
            trace=execution.trace,
            schedule=execution.schedule,
            footprints=execution.footprints,
            branches=tuple(recorder.branches),
        )

    # -- observation (parent, submission order) --------------------------

    def _observe(self, observation: WaveObservation, result) -> None:
        from ..api.events import (
            EquivalentPruned,
            ExecutionExplored,
            NovelCoverage,
        )

        cfg = self.config
        schedule = observation.schedule
        signature = schedule.signature()
        canonical = schedule.canonical_signature(observation.footprints)
        failed = observation.trace.failed
        result.executions += 1
        if failed:
            result.n_failed += 1
        novel_signature = signature not in self.seen
        self.seen.add(signature)
        occurrences = self.canonical_seen.get(canonical, 0) + 1
        self.canonical_seen[canonical] = occurrences
        novel_class = occurrences == 1
        if observation.mutated:
            self._mutations += 1
            if novel_class:
                self._mutations_novel += 1
        if not novel_class:
            result.pruned_equivalent += 1
            if cfg.partial_order:
                self._emit(
                    EquivalentPruned(
                        signature=signature,
                        canonical=canonical,
                        occurrences=occurrences,
                    )
                )
        self._emit(
            ExecutionExplored(
                index=result.executions - 1,
                seed=observation.seed,
                signature=signature,
                failed=failed,
                mutated=observation.mutated,
            )
        )
        new_edges = schedule.transitions() - self.coverage
        if new_edges:
            self.coverage.update(new_edges)
        # Mutation energy is allotted by equivalence class: a schedule
        # in an already-seen class earns no frontier slot even if its
        # particular linearization covered a new handoff edge, while a
        # class-novel schedule earns one even after the tiny edge
        # alphabet saturates — that is where the canonical signature
        # keeps discriminating.  Without pruning, admission is the
        # historical new-edges rule.
        if cfg.partial_order:
            admit = novel_class
        else:
            admit = bool(new_edges)
        if admit:
            self.frontier.append(schedule)
            if cfg.partial_order and signature not in self._flips:
                self._flips[signature] = relevant_flips(
                    schedule.decisions,
                    observation.footprints,
                    observation.branches,
                )
        if new_edges:
            self._emit(
                NovelCoverage(
                    signature=signature,
                    new_edges=len(new_edges),
                    total_edges=len(self.coverage),
                )
            )
        novel_for_ingest = novel_class if cfg.partial_order else novel_signature
        if failed and signature not in self.failing_seen:
            self.failing_seen.add(signature)
            self._record_failure(observation, schedule, signature, result)
        elif (
            not failed
            and novel_for_ingest
            and self.store is not None
            and result.ingested_pass + self._pending_pass
            < cfg.max_pass_ingest
        ):
            self._wave_candidates.append(
                (observation.trace, signature, "pass")
            )
            self._pending_pass += 1

    def _record_failure(self, observation, schedule, signature, result):
        from ..api.events import FailureFound

        cfg = self.config
        fingerprint = stable_digest(trace_to_dict(observation.trace))
        if fingerprint in self._failure_fingerprints:
            return  # same observable trace as a recorded failure
        self._failure_fingerprints.add(fingerprint)
        verified: Optional[bool] = None
        if cfg.verify_replays:
            replay = self.simulator.run(
                schedule.seed, strategy=ReplayStrategy(schedule=schedule)
            )
            verified = (
                stable_digest(trace_to_dict(replay.trace)) == fingerprint
            )
        path = None
        if cfg.schedule_dir is not None:
            directory = Path(cfg.schedule_dir)
            directory.mkdir(parents=True, exist_ok=True)
            path = str(schedule.save(directory / f"{signature}.json"))
        found = FoundFailure(
            schedule=schedule,
            signature=signature,
            failure_signature=observation.trace.failure.signature,
            seed=schedule.seed,
            fingerprint=fingerprint,
            replay_verified=verified,
            path=path,
        )
        result.failures.append(found)
        if self.store is not None:
            self._wave_candidates.append(
                (observation.trace, signature, "fail")
            )
        self._emit(
            FailureFound(
                signature=signature,
                failure_signature=found.failure_signature,
                seed=found.seed,
                replay_verified=bool(verified),
            )
        )

    # -- corpus integration (batched per wave) ---------------------------

    def _ingest_wave(self, result) -> None:
        """Flush the wave's ingestion candidates: plain store ingests
        until the pipeline can bootstrap, one
        :meth:`~repro.corpus.pipeline.IncrementalPipeline.ingest_batch`
        for everything after."""
        candidates = self._wave_candidates
        self._wave_candidates = []
        self._pending_pass = 0
        if self.store is None or not candidates:
            return
        added_flags: list[bool] = []
        i = 0
        while i < len(candidates):
            self._maybe_bootstrap()
            if self.pipeline is not None:
                break
            trace, sched_sig, _ = candidates[i]
            _, added = self.store.ingest(
                trace, schedule_signature=sched_sig
            )
            added_flags.append(added)
            i += 1
        if i < len(candidates):
            batch = self.pipeline.ingest_batch(
                [trace for trace, _, _ in candidates[i:]],
                [sig for _, sig, _ in candidates[i:]],
            )
            added_flags.extend(r.added for r in batch.results)
        for (_, _, kind), added in zip(candidates, added_flags):
            if not added:
                continue
            if kind == "fail":
                result.ingested_fail += 1
            else:
                result.ingested_pass += 1

    def _maybe_bootstrap(self) -> None:
        """Bootstrap the incremental pipeline once both labels exist.

        A store that cannot bootstrap yet (or whose content defeats
        suite discovery) falls back to plain ``store.ingest`` — the
        traces are never lost, analysis just starts on the next
        ``repro corpus analyze``.
        """
        from ..corpus.pipeline import IncrementalPipeline
        from ..corpus.store import CorpusError

        if self.pipeline is not None or self.store is None:
            return
        if self.store.n_pass < 1 or self.store.n_fail < 1:
            return
        pipeline = IncrementalPipeline(
            self.store, program=self.program, bus=self.bus
        )
        try:
            pipeline.bootstrap()
        except CorpusError:
            return
        self.pipeline = pipeline

    def _persist(self) -> None:
        if self.pipeline is not None:
            self.pipeline.save()
        elif self.store is not None:
            self.store.save()

    def _emit_stats(self, result) -> None:
        from ..api.events import FrontierStats

        self._emit(
            FrontierStats(
                executions=result.executions,
                frontier_size=len(self.frontier),
                coverage_edges=len(self.coverage),
                distinct_signatures=len(self.seen),
                failures_found=len(result.failures),
            )
        )


def explore(
    program: "Program",
    config: Optional[ExploreConfig] = None,
    store: Optional["TraceStore"] = None,
    bus: Optional["EventBus"] = None,
) -> ExplorationResult:
    """One-call exploration: run the driver and return its result."""
    return ExplorationDriver(
        program, config=config, store=store, bus=bus
    ).run()
