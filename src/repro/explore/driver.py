"""Coverage-guided schedule-space exploration over one program.

Role
----
The fuzzing loop of :mod:`repro.explore`: run the simulator under a
pluggable strategy, fingerprint each execution's *interleaving*
(:meth:`~repro.sim.schedule.Schedule.signature`), keep a frontier of
coverage-increasing schedules, and mutate frontier members (replay a
prefix, explore a fresh tail) to push into unseen handoff orderings.
Every novel failing interleaving becomes two durable artifacts:

* its trace, ingested into a :class:`~repro.corpus.store.TraceStore`
  (through the :class:`~repro.corpus.pipeline.IncrementalPipeline` once
  the store can bootstrap one, so the corpus's SD counts, FD set, and
  AC-DAG stay patched as failures stream in);
* its recorded :class:`~repro.sim.schedule.Schedule`, replay-verified
  on the spot and optionally saved to disk — the reproducer.

Coverage signal
---------------
An execution's coverage is its set of thread-handoff edges
(``Schedule.transitions()``: which thread ran immediately after which).
The alphabet is tiny and saturates fast on small programs — exactly the
property a frontier needs: once edges stop appearing, mutation energy
concentrates on reorderings of known edges, which is where the
signature (full decision sequence) keeps discriminating.

Invariants
----------
* a driver run is a pure function of ``(config, program)``: all
  randomness flows from ``Random(config.start_seed)`` and the
  per-execution seeds ``start_seed + i`` (asserted in tests);
* observers never affect results — events mirror state changes that
  already happened (the :mod:`repro.api.events` contract);
* every reported failure's schedule replays to the recorded trace
  fingerprint when ``verify_replays`` is on (asserted per failure and
  surfaced per-failure in the result payload).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import TYPE_CHECKING, Optional

from ..sim.schedule import RandomStrategy, ReplayStrategy, Schedule
from ..sim.scheduler import DEFAULT_MAX_STEPS, Simulator
from ..sim.serialize import stable_digest, trace_to_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.events import EventBus
    from ..corpus.store import TraceStore
    from ..sim.program import Program

#: version of the ``repro explore --json`` payload
EXPLORE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class ExploreConfig:
    """Knobs for one exploration run."""

    #: total executions to spend
    budget: int = 200
    #: registered strategy driving *fresh* (non-mutated) executions
    strategy: str = "random"
    strategy_params: dict = field(default_factory=dict)
    start_seed: int = 0
    max_steps: int = DEFAULT_MAX_STEPS
    #: probability a run mutates a frontier schedule instead of running
    #: the strategy fresh (0 disables mutation entirely)
    mutation_rate: float = 0.5
    #: most coverage-increasing schedules kept for mutation (FIFO)
    frontier_cap: int = 64
    #: passing traces ingested into the corpus (novel-coverage ones
    #: first) — enough for the pipeline to bootstrap, without flooding
    #: the store with near-duplicate successes
    max_pass_ingest: int = 25
    #: emit a frontier-stats event every N executions (0 disables)
    stats_every: int = 50
    #: re-run every novel failure from its recorded schedule and check
    #: the trace fingerprint matches
    verify_replays: bool = True
    #: directory to save one ``<signature>.json`` schedule per novel
    #: failure (``None`` = keep schedules in memory only)
    schedule_dir: Optional[str] = None


@dataclass
class FoundFailure:
    """One novel failing interleaving and its reproducer."""

    schedule: Schedule
    signature: str  # schedule (interleaving) signature
    failure_signature: str
    seed: int
    fingerprint: str  # trace content fingerprint
    replay_verified: Optional[bool] = None  # None = not verified
    path: Optional[str] = None  # saved schedule file, if any

    def to_dict(self) -> dict:
        return {
            "signature": self.signature,
            "failure_signature": self.failure_signature,
            "seed": self.seed,
            "fingerprint": self.fingerprint,
            "replay_verified": self.replay_verified,
            "path": self.path,
            "decisions": len(self.schedule),
        }


@dataclass
class ExplorationResult:
    """Everything one exploration run learned."""

    program: str
    strategy: str
    budget: int
    executions: int = 0
    n_failed: int = 0
    distinct_signatures: int = 0
    distinct_failing_signatures: int = 0
    coverage_edges: int = 0
    frontier_size: int = 0
    ingested_pass: int = 0
    ingested_fail: int = 0
    failures: list[FoundFailure] = field(default_factory=list)

    @property
    def all_replays_verified(self) -> bool:
        """Whether every verified failure replayed byte-identically
        (vacuously true when verification was off)."""
        return all(
            f.replay_verified is not False for f in self.failures
        )

    def to_dict(self) -> dict:
        return {
            "schema": EXPLORE_SCHEMA_VERSION,
            "program": self.program,
            "strategy": self.strategy,
            "budget": self.budget,
            "executions": self.executions,
            "n_failed": self.n_failed,
            "distinct_signatures": self.distinct_signatures,
            "distinct_failing_signatures": self.distinct_failing_signatures,
            "coverage_edges": self.coverage_edges,
            "frontier_size": self.frontier_size,
            "ingested": {
                "pass": self.ingested_pass,
                "fail": self.ingested_fail,
            },
            "failures_found": len(self.failures),
            "all_replays_verified": self.all_replays_verified,
            "failures": [f.to_dict() for f in self.failures],
        }


class ExplorationDriver:
    """The coverage-guided exploration loop (see the module docstring).

    ``store`` is optional: without one, exploration still finds and
    verifies failures, it just keeps no durable corpus.  With one, every
    novel failing trace (plus a bounded sample of passes) is ingested —
    through an :class:`~repro.corpus.pipeline.IncrementalPipeline` as
    soon as the store holds both labels, so the maintained analysis
    views patch along.
    """

    def __init__(
        self,
        program: "Program",
        config: Optional[ExploreConfig] = None,
        store: Optional["TraceStore"] = None,
        bus: Optional["EventBus"] = None,
    ) -> None:
        self.program = program
        self.config = config or ExploreConfig()
        self.store = store
        self.bus = bus
        self.simulator = Simulator(
            program, max_steps=self.config.max_steps
        )
        #: interleaving signatures of every execution seen
        self.seen: set[str] = set()
        #: signatures that failed (novelty filter for ingestion)
        self.failing_seen: set[str] = set()
        #: handoff edges covered so far
        self.coverage: set[tuple[str, str]] = set()
        #: coverage-increasing schedules, mutation fodder (FIFO-capped)
        self.frontier: list[Schedule] = []
        self.pipeline = None  # lazily bootstrapped IncrementalPipeline
        self._rng = Random(self.config.start_seed)

    def _emit(self, event) -> None:
        if self.bus is not None:
            self.bus.emit(event)

    # -- the loop --------------------------------------------------------

    def run(self) -> ExplorationResult:
        from ..api.events import ExplorationFinished, ExplorationStarted
        from ..api.registry import strategy_factory

        cfg = self.config
        factory = strategy_factory(cfg.strategy, cfg.strategy_params)
        result = ExplorationResult(
            program=self.program.name,
            strategy=cfg.strategy,
            budget=cfg.budget,
        )
        self._emit(
            ExplorationStarted(
                program=self.program.name,
                strategy=cfg.strategy,
                budget=cfg.budget,
            )
        )
        for i in range(cfg.budget):
            seed = cfg.start_seed + i
            strategy, mutated = self._next_strategy(factory, seed)
            execution = self.simulator.run(seed, strategy=strategy)
            self._observe(execution, seed, mutated, result)
            if cfg.stats_every and (i + 1) % cfg.stats_every == 0:
                self._emit_stats(result)
        result.coverage_edges = len(self.coverage)
        result.frontier_size = len(self.frontier)
        result.distinct_signatures = len(self.seen)
        result.distinct_failing_signatures = len(self.failing_seen)
        self._persist()
        self._emit(
            ExplorationFinished(
                executions=result.executions,
                failures_found=len(result.failures),
                distinct_signatures=result.distinct_signatures,
                distinct_failing_signatures=(
                    result.distinct_failing_signatures
                ),
                coverage_edges=result.coverage_edges,
            )
        )
        return result

    def _next_strategy(self, factory, seed: int):
        """Mutate a frontier schedule, or run the base strategy fresh."""
        cfg = self.config
        if self.frontier and self._rng.random() < cfg.mutation_rate:
            parent = self._rng.choice(self.frontier)
            if len(parent) > 0:
                cut = self._rng.randrange(1, len(parent) + 1)
                return (
                    ReplayStrategy(
                        schedule=parent,
                        prefix=cut,
                        tail=RandomStrategy(seed),
                    ),
                    True,
                )
        return factory(seed), False

    def _observe(self, execution, seed, mutated, result) -> None:
        from ..api.events import ExecutionExplored, NovelCoverage

        cfg = self.config
        schedule = execution.schedule
        signature = schedule.signature()
        failed = execution.failed
        result.executions += 1
        if failed:
            result.n_failed += 1
        novel_signature = signature not in self.seen
        self.seen.add(signature)
        self._emit(
            ExecutionExplored(
                index=result.executions - 1,
                seed=seed,
                signature=signature,
                failed=failed,
                mutated=mutated,
            )
        )
        new_edges = schedule.transitions() - self.coverage
        if new_edges:
            self.coverage.update(new_edges)
            self.frontier.append(schedule)
            if len(self.frontier) > cfg.frontier_cap:
                self.frontier.pop(0)
            self._emit(
                NovelCoverage(
                    signature=signature,
                    new_edges=len(new_edges),
                    total_edges=len(self.coverage),
                )
            )
        if failed and signature not in self.failing_seen:
            self.failing_seen.add(signature)
            self._record_failure(execution, schedule, signature, result)
        elif (
            not failed
            and novel_signature
            and result.ingested_pass < cfg.max_pass_ingest
        ):
            if self._ingest(execution.trace, signature):
                result.ingested_pass += 1

    def _record_failure(self, execution, schedule, signature, result):
        from ..api.events import FailureFound

        cfg = self.config
        fingerprint = stable_digest(trace_to_dict(execution.trace))
        verified: Optional[bool] = None
        if cfg.verify_replays:
            replay = self.simulator.run(
                schedule.seed, strategy=ReplayStrategy(schedule=schedule)
            )
            verified = (
                stable_digest(trace_to_dict(replay.trace)) == fingerprint
            )
        path = None
        if cfg.schedule_dir is not None:
            directory = Path(cfg.schedule_dir)
            directory.mkdir(parents=True, exist_ok=True)
            path = str(schedule.save(directory / f"{signature}.json"))
        found = FoundFailure(
            schedule=schedule,
            signature=signature,
            failure_signature=execution.failure.signature,
            seed=schedule.seed,
            fingerprint=fingerprint,
            replay_verified=verified,
            path=path,
        )
        result.failures.append(found)
        if self._ingest(execution.trace, signature):
            result.ingested_fail += 1
        self._emit(
            FailureFound(
                signature=signature,
                failure_signature=found.failure_signature,
                seed=found.seed,
                replay_verified=bool(verified),
            )
        )

    # -- corpus integration ----------------------------------------------

    def _ingest(self, trace, schedule_signature: str) -> bool:
        """Store one trace (through the pipeline once it can bootstrap);
        returns whether the store grew."""
        if self.store is None:
            return False
        self._maybe_bootstrap()
        if self.pipeline is not None:
            outcome = self.pipeline.ingest(
                trace, schedule_signature=schedule_signature
            )
            return outcome.added
        _, added = self.store.ingest(
            trace, schedule_signature=schedule_signature
        )
        return added

    def _maybe_bootstrap(self) -> None:
        """Bootstrap the incremental pipeline once both labels exist.

        A store that cannot bootstrap yet (or whose content defeats
        suite discovery) falls back to plain ``store.ingest`` — the
        traces are never lost, analysis just starts on the next
        ``repro corpus analyze``.
        """
        from ..corpus.pipeline import IncrementalPipeline
        from ..corpus.store import CorpusError

        if self.pipeline is not None or self.store is None:
            return
        if self.store.n_pass < 1 or self.store.n_fail < 1:
            return
        pipeline = IncrementalPipeline(
            self.store, program=self.program, bus=self.bus
        )
        try:
            pipeline.bootstrap()
        except CorpusError:
            return
        self.pipeline = pipeline

    def _persist(self) -> None:
        if self.pipeline is not None:
            self.pipeline.save()
        elif self.store is not None:
            self.store.save()

    def _emit_stats(self, result) -> None:
        from ..api.events import FrontierStats

        self._emit(
            FrontierStats(
                executions=result.executions,
                frontier_size=len(self.frontier),
                coverage_edges=len(self.coverage),
                distinct_signatures=len(self.seen),
                failures_found=len(result.failures),
            )
        )


def explore(
    program: "Program",
    config: Optional[ExploreConfig] = None,
    store: Optional["TraceStore"] = None,
    bus: Optional["EventBus"] = None,
) -> ExplorationResult:
    """One-call exploration: run the driver and return its result."""
    return ExplorationDriver(
        program, config=config, store=store, bus=bus
    ).run()
