"""Plain-text table rendering for experiment outputs.

The benchmarks print the same rows/series the paper reports; this keeps
the formatting in one place so every figure driver produces uniform,
diff-friendly output.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    materialized = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if abs(cell) >= 1e8:
            return f"{cell:.3e}"
        if cell == int(cell):
            return str(int(cell))
        return f"{cell:.2f}"
    return str(cell)
