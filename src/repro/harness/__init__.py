"""``repro.harness`` — corpus collection, sessions, and experiments."""

from .experiments import (
    CASE_STUDY_ORDER,
    CaseStudyResult,
    Figure8Result,
    example3_report,
    figure6_report,
    figure7,
    figure7_report,
    figure7_row,
    figure8,
    figure8_report,
)
from .multi import MultiSignatureReport, debug_all
from .runner import CollectionError, LabeledCorpus, collect, sweep
from .session import AIDSession, SessionConfig, SessionReport, debug
from .tables import render_table

__all__ = [
    "AIDSession",
    "CASE_STUDY_ORDER",
    "CaseStudyResult",
    "Figure8Result",
    "example3_report",
    "figure6_report",
    "figure7",
    "figure7_report",
    "figure7_row",
    "figure8",
    "figure8_report",
    "render_table",
    "CollectionError",
    "LabeledCorpus",
    "MultiSignatureReport",
    "SessionConfig",
    "SessionReport",
    "collect",
    "debug",
    "debug_all",
    "sweep",
]
