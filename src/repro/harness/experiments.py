"""Experiment drivers: regenerate every table and figure of Section 7.

* :func:`figure7_row` / :func:`figure7` — the six case studies
  (SD predicate counts, causal path length, AID vs TAGT interventions);
* :func:`figure8` — the synthetic sweep over MAXt for the four
  approaches, average and worst case;
* :func:`figure6` lives in :mod:`repro.core.theory` (pure math) and is
  rendered by :func:`figure6_report` here;
* :func:`example3_report` — the Section 6.1 search-space example.

Each driver returns structured results *and* can render the paper-style
text table, so the pytest benchmarks both check shape properties and
print the artifact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional, Sequence

import networkx as nx

from ..core.theory import (
    count_cpd_solutions,
    figure6_table,
    gt_search_space,
    symmetric_search_space,
    tagt_worst_case_rounds,
)
from ..core.variants import Approach, all_approaches, discover
from ..workloads.common import REGISTRY, Workload
from ..workloads.synthetic import generate_app, spec_for_maxt
from .session import AIDSession, SessionConfig, SessionReport
from .tables import render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.engine import ExecutionEngine

CASE_STUDY_ORDER = (
    "npgsql",
    "kafka",
    "cosmosdb",
    "network",
    "buildandtest",
    "healthtelemetry",
)

FIGURE8_MAXT = (2, 10, 18, 26, 34, 42)


# ---------------------------------------------------------------------------
# Figure 7: case studies
# ---------------------------------------------------------------------------


@dataclass
class CaseStudyResult:
    """One measured row of Figure 7, next to the paper's numbers."""

    workload: Workload
    aid: SessionReport
    tagt: SessionReport

    @property
    def name(self) -> str:
        return self.workload.name

    @property
    def sd_predicates(self) -> int:
        return self.aid.n_sd_predicates

    @property
    def causal_path_len(self) -> int:
        return self.aid.n_causal

    @property
    def aid_rounds(self) -> int:
        return self.aid.n_rounds

    @property
    def tagt_rounds(self) -> int:
        return self.tagt.n_rounds

    @property
    def paths_agree(self) -> bool:
        return self.aid.causal_path == self.tagt.causal_path

    @property
    def matches_ground_truth(self) -> bool:
        """Does the discovered path match the workload's known markers?"""
        path = self.aid.causal_path
        markers = self.workload.expected_path_markers
        if len(path) - 1 != len(markers):
            return False
        return all(marker in pid for marker, pid in zip(markers, path))

    def row(self) -> list[object]:
        paper = self.workload.paper
        return [
            self.name,
            paper.github_issue,
            f"{self.sd_predicates} ({paper.sd_predicates})",
            f"{self.causal_path_len} ({paper.causal_path_len})",
            f"{self.aid_rounds} ({paper.aid_interventions})",
            f"{self.tagt_rounds} ({paper.tagt_interventions})",
            "yes" if self.matches_ground_truth else "NO",
        ]


def figure7_row(
    name: str,
    config: Optional[SessionConfig] = None,
    engine: Optional["ExecutionEngine"] = None,
) -> CaseStudyResult:
    """Run AID and TAGT on one case study.

    With a shared ``engine``, AID's and TAGT's overlapping rounds (and
    any earlier sweep persisted in the engine's cache) are memoized.
    """
    workload = REGISTRY.build(name)
    cfg = config or SessionConfig()
    if engine is not None:
        cfg = replace(cfg, engine=engine)
    session = AIDSession(workload.program, cfg)
    aid = session.run(Approach.AID)
    tagt = session.run(Approach.TAGT)
    return CaseStudyResult(workload=workload, aid=aid, tagt=tagt)


def figure7(
    names: Sequence[str] = CASE_STUDY_ORDER,
    config: Optional[SessionConfig] = None,
    engine: Optional["ExecutionEngine"] = None,
) -> list[CaseStudyResult]:
    """All Figure 7 rows."""
    return [figure7_row(name, config, engine) for name in names]


def figure7_report(results: Sequence[CaseStudyResult]) -> str:
    return render_table(
        headers=[
            "Application",
            "Issue",
            "#SD preds (paper)",
            "#Causal (paper)",
            "AID (paper)",
            "TAGT (paper)",
            "truth",
        ],
        rows=[r.row() for r in results],
        title="Figure 7 — case studies: measured (paper reference in parens)",
    )


# ---------------------------------------------------------------------------
# Figure 8: synthetic sweep
# ---------------------------------------------------------------------------


@dataclass
class Figure8Cell:
    """One (MAXt, approach) aggregate."""

    maxt: int
    approach: Approach
    rounds: list[int] = field(default_factory=list)

    @property
    def average(self) -> float:
        return sum(self.rounds) / len(self.rounds) if self.rounds else 0.0

    @property
    def worst(self) -> int:
        return max(self.rounds) if self.rounds else 0


@dataclass
class Figure8Result:
    cells: dict[tuple[int, Approach], Figure8Cell]
    avg_predicates: dict[int, float]
    n_apps: int
    all_exact: bool  # every approach recovered the exact causal set

    def series(self, approach: Approach, stat: str = "average") -> list[float]:
        return [
            getattr(self.cells[(maxt, approach)], stat)
            for maxt in sorted({m for m, _ in self.cells})
        ]


def figure8(
    maxt_values: Sequence[int] = FIGURE8_MAXT,
    apps_per_setting: int = 100,
    seed: int = 7,
    engine: Optional["ExecutionEngine"] = None,
) -> Figure8Result:
    """The Section 7.2 synthetic experiment.

    The paper uses 500 apps per setting; the default here is 100 (the
    oracle makes either cheap — raise it for tighter averages).  A
    shared ``engine`` memoizes overlapping rounds across the four
    approaches per app, and — with a persistent cache — across whole
    sweep invocations.
    """
    cells: dict[tuple[int, Approach], Figure8Cell] = {}
    avg_preds: dict[int, float] = {}
    all_exact = True
    for maxt in maxt_values:
        spec = spec_for_maxt(maxt)
        sizes: list[int] = []
        for approach in all_approaches():
            cells[(maxt, approach)] = Figure8Cell(maxt=maxt, approach=approach)
        for i in range(apps_per_setting):
            app = generate_app(seed * 1_000_000 + maxt * 1_000 + i, spec)
            sizes.append(app.n_predicates)
            truth = set(app.causal_path)
            for approach in all_approaches():
                result = discover(
                    approach,
                    app.dag,
                    app.runner(engine=engine),
                    rng=random.Random(seed + i),
                )
                found = set(result.causal_path) - {result.failure}
                if found != truth:
                    all_exact = False
                cells[(maxt, approach)].rounds.append(result.n_rounds)
        avg_preds[maxt] = sum(sizes) / len(sizes)
    return Figure8Result(
        cells=cells,
        avg_predicates=avg_preds,
        n_apps=apps_per_setting,
        all_exact=all_exact,
    )


def figure8_report(result: Figure8Result) -> str:
    maxts = sorted(result.avg_predicates)
    rows_avg = []
    rows_worst = []
    for maxt in maxts:
        row_a: list[object] = [maxt, result.avg_predicates[maxt]]
        row_w: list[object] = [maxt, result.avg_predicates[maxt]]
        for approach in all_approaches():
            cell = result.cells[(maxt, approach)]
            row_a.append(cell.average)
            row_w.append(cell.worst)
        rows_avg.append(row_a)
        rows_worst.append(row_w)
    headers = ["MAXt", "avg N"] + [a.value for a in all_approaches()]
    return "\n\n".join(
        [
            render_table(
                headers, rows_avg, title="Figure 8 (left) — average #interventions"
            ),
            render_table(
                headers, rows_worst, title="Figure 8 (right) — worst-case #interventions"
            ),
        ]
    )


# ---------------------------------------------------------------------------
# Figure 6 and Example 3: theory
# ---------------------------------------------------------------------------


def figure6_report(
    junctions: int = 3,
    branches: int = 4,
    chain_length: int = 3,
    n_causal: int = 4,
    s1: int = 2,
    s2: int = 2,
) -> str:
    """The Figure 6 bounds table for a symmetric AC-DAG instance."""
    rows = figure6_table(junctions, branches, chain_length, n_causal, s1, s2)
    return render_table(
        headers=["", "Search space", "Lower bound", "Upper bound"],
        rows=[[r.name, r.search_space, r.lower_bound, r.upper_bound] for r in rows],
        title=(
            f"Figure 6 — symmetric AC-DAG J={junctions} B={branches} "
            f"n={chain_length} D={n_causal} S1={s1} S2={s2} "
            f"(N={junctions * branches * chain_length})"
        ),
    )


def example3_report() -> str:
    """Example 3: two parallel 3-chains — GT 64 candidates vs CPD 15."""
    graph = nx.DiGraph()
    nx.add_path(graph, ["A1", "B1", "C1"])
    nx.add_path(graph, ["A2", "B2", "C2"])
    cpd = count_cpd_solutions(graph)
    gt = gt_search_space(6)
    closed_form = symmetric_search_space(1, 2, 3)
    return render_table(
        headers=["Model", "Search space"],
        rows=[
            ["Group testing (2^6)", gt],
            ["CPD (brute force)", cpd],
            ["CPD (closed form, Lemma 1)", closed_form],
        ],
        title="Example 3 — search space of Figure 5(a)",
    )


def tagt_worst_case_table() -> str:
    """Analytic TAGT worst cases (D·⌈log2 N⌉) for the six case studies."""
    rows = []
    for name in CASE_STUDY_ORDER:
        paper = REGISTRY.build(name).paper
        analytic = tagt_worst_case_rounds(paper.sd_predicates, paper.causal_path_len)
        rows.append([name, paper.sd_predicates, paper.causal_path_len, analytic, paper.tagt_interventions])
    return render_table(
        headers=["Application", "N", "D", "D·⌈log2 N⌉", "paper TAGT"],
        rows=rows,
        title="TAGT analytic worst case vs paper Figure 7 column 6",
    )
