"""End-to-end AID sessions: the paper's Figure 1 workflow in one object.

:class:`AIDSession` wires the full pipeline against a simulated program:

    collect labeled traces → extract predicates → statistical debugging
    → AC-DAG → causality-guided group interventions → causal path
    → explanation

``repro.debug(program)`` (see the package root) is a one-call wrapper
around this class.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from ..core.acdag import ACDag
from ..core.discovery import DiscoveryResult
from ..core.extraction import Extractor, PredicateSuite
from ..core.intervention import SimulationRunner
from ..core.precedence import PrecedencePolicy, default_policy
from ..core.report import Explanation, explain, report_to_dict
from ..core.statistical import PredicateLog, StatisticalDebugger
from ..core.variants import Approach, discover
from ..sim.program import Program
from ..sim.scheduler import DEFAULT_MAX_STEPS, Simulator
from .runner import LabeledCorpus, collect

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..api.events import Event, EventBus
    from ..exec.engine import ExecutionEngine


@dataclass
class SessionConfig:
    """Knobs for a debugging session (defaults mirror the paper)."""

    n_success: int = 50
    n_fail: int = 50
    start_seed: int = 0
    max_steps: int = DEFAULT_MAX_STEPS
    #: executions per intervention round; known-failing seeds replayed
    #: first (paper footnote 1: one counter-example suffices).
    repeats: int = 25
    rng_seed: int = 0
    extractors: Optional[Sequence[Extractor]] = None
    policy: Optional[PrecedencePolicy] = None
    #: Intervention-execution engine (backend + outcome cache + stats),
    #: shareable across sessions so sweeps pool their memoization.
    #: ``None`` gives each runner a private serial engine — bit-identical
    #: to historical in-line execution.
    engine: Optional["ExecutionEngine"] = None
    #: Observer seam (see :mod:`repro.api.events`): the session emits
    #: phase events onto this bus.  Observers never affect results.
    bus: Optional["EventBus"] = None
    #: Registered scheduler-strategy name for collection *and*
    #: intervention re-execution (``None`` = the historical
    #: seeded-uniform picker, byte-identical traces), plus its
    #: parameters (e.g. ``{"depth": 3}`` for ``pct``).
    strategy: Optional[str] = None
    strategy_params: dict = field(default_factory=dict)


@dataclass
class SessionReport:
    """Everything a session learned, for inspection and experiments.

    Full sessions (live or corpus-backed) populate every field;
    analyze-only runs (``repro corpus analyze`` through the API's
    incremental mode) leave ``corpus``, ``discovery``, ``explanation``,
    and ``approach`` as ``None`` and carry their log counts in
    ``n_success``/``n_fail`` instead.  :meth:`to_dict` renders either
    shape as the versioned JSON schema
    (:data:`repro.core.report.REPORT_SCHEMA_VERSION`).
    """

    program: Optional[Program] = None
    corpus: Optional[LabeledCorpus] = None
    suite: PredicateSuite = field(default_factory=PredicateSuite)
    #: batch or incremental debugger — anything with ``stats()``
    debugger: object = None
    fully_discriminative: list[str] = field(default_factory=list)
    dag: Optional[ACDag] = None
    discovery: Optional[DiscoveryResult] = None
    explanation: Optional[Explanation] = None
    approach: Optional[Approach] = None
    #: the failure signature the analysis was restricted to
    signature: Optional[str] = None
    #: analyzed-log counts when ``corpus`` bodies were never
    #: materialized (incremental analyze); ``None`` otherwise
    n_success: Optional[int] = None
    n_fail: Optional[int] = None
    #: program name fallback when no live :class:`Program` is attached
    #: (an unbundled program analyzed from a stored corpus)
    program_name: Optional[str] = None
    #: observability metadata (the report's additive ``meta`` key):
    #: both stay ``None`` unless a :class:`repro.obs.ObsContext` was
    #: attached to the run, keeping reports reproducible by default
    run_id: Optional[str] = None
    metrics: Optional[dict] = None

    @property
    def n_sd_predicates(self) -> int:
        """SD's output size (Figure 7 column 3): fully-discriminative
        predicates, excluding the failure predicate itself."""
        return len(self.fully_discriminative)

    @property
    def causal_path(self) -> list[str]:
        return self.discovery.causal_path if self.discovery else []

    @property
    def n_causal(self) -> int:
        """Causal path length excluding F (Figure 7 column 4)."""
        return max(0, len(self.causal_path) - 1)

    @property
    def n_rounds(self) -> int:
        return self.discovery.n_rounds if self.discovery else 0

    def to_dict(self) -> dict:
        """The versioned, deterministic JSON payload of this report —
        one schema shared by ``repro run --json``, the benchmarks, and
        the tests (see :func:`repro.core.report.report_to_dict`)."""
        return report_to_dict(self)


class AIDSession:
    """A full debugging session for one simulated program."""

    def __init__(self, program: Program, config: Optional[SessionConfig] = None):
        self.program = program
        self.config = config or SessionConfig()
        self._corpus: Optional[LabeledCorpus] = None
        self._suite: Optional[PredicateSuite] = None
        self._logs: Optional[list[PredicateLog]] = None
        self._dag: Optional[ACDag] = None
        self._failure_pid: Optional[str] = None
        self._debugger: Optional[StatisticalDebugger] = None
        self._fully: Optional[list[str]] = None
        self._signature: Optional[str] = None

    def _emit(self, event: "Event") -> None:
        """Observer seam: no-op without a bus; never affects results."""
        if self.config.bus is not None:
            self.config.bus.emit(event)

    def _span(self, name: str):
        """A timed phase span on the session's bus (no-op without one)."""
        if self.config.bus is not None:
            return self.config.bus.span(name)
        return nullcontext()

    def _strategy_factory(self):
        """The per-seed scheduler-strategy constructor this session's
        config names, or ``None`` for the default picker.  Lazy registry
        import: the harness must stay importable without ``repro.api``."""
        if self.config.strategy is None:
            return None
        from ..api.registry import strategy_factory

        return strategy_factory(
            self.config.strategy, self.config.strategy_params
        )

    # -- pipeline stages (each cached, callable individually) -----------

    def collect(self) -> LabeledCorpus:
        """Stage 1: gather labeled traces (one failure signature)."""
        if self._corpus is None:
            from ..api.events import CollectionFinished, CollectionStarted

            cfg = self.config
            self._emit(
                CollectionStarted(
                    program=self.program.name,
                    n_success=cfg.n_success,
                    n_fail=cfg.n_fail,
                )
            )
            with self._span("collection"):
                corpus = collect(
                    self.program,
                    n_success=cfg.n_success,
                    n_fail=cfg.n_fail,
                    start_seed=cfg.start_seed,
                    max_steps=cfg.max_steps,
                    strategy_factory=self._strategy_factory(),
                )
            signature = corpus.dominant_failure_signature()
            self._signature = signature
            self._corpus = corpus.restrict_failures(signature)
            self._emit(
                CollectionFinished(
                    n_success=len(self._corpus.successes),
                    n_fail=len(self._corpus.failures),
                    signature=signature,
                )
            )
        return self._corpus

    def analyze(self) -> StatisticalDebugger:
        """Stages 2-3: predicate extraction + statistical debugging."""
        if self._debugger is None:
            from ..api.events import LogsEvaluated, SuiteFrozen

            corpus = self.collect()
            with self._span("discovery"):
                self._suite = PredicateSuite.discover(
                    corpus.successes,
                    corpus.failures,
                    extractors=self.config.extractors,
                    program=self.program,
                    engine=self.config.engine,
                )
            self._emit(SuiteFrozen(n_predicates=len(self._suite)))
            with self._span("evaluate"):
                self._logs = self._evaluate_logs(
                    corpus.successes + corpus.failures
                )
            fresh, memoized = self._evaluation_counters()
            self._emit(
                LogsEvaluated(
                    n_logs=len(self._logs),
                    fresh=fresh,
                    memoized=memoized,
                    kernel_calls=self._kernel_calls(),
                )
            )
            self._debugger = StatisticalDebugger(logs=self._logs)
            # One pass over the already-maintained per-pid counters —
            # not a rescan of every log per candidate failure pid.
            failure_pids = [
                pid
                for pid in self._suite.failure_pids()
                if self._debugger.observed_in_failed(pid)
            ]
            if not failure_pids:
                raise RuntimeError("no failure predicate was extracted")
            self._failure_pid = failure_pids[0]
            self._fully = [
                pid
                for pid in self._debugger.fully_discriminative_pids()
                if pid != self._failure_pid
                and pid not in set(self._suite.failure_pids())
            ]
        return self._debugger

    def _evaluate_logs(self, traces) -> list[PredicateLog]:
        """Evaluate the frozen suite over the corpus traces.

        Subclass hook: :class:`repro.corpus.session.CorpusSession` routes
        this through the persistent eval matrix so warm corpora pay zero
        re-evaluations.
        """
        return self._suite.evaluate_all(traces)

    def _evaluation_counters(self) -> tuple[Optional[int], Optional[int]]:
        """(fresh, memoized) evaluation counts for the ``logs-evaluated``
        event — ``(None, None)`` when evaluation is not memoized (live
        sessions); overridden by :class:`~repro.corpus.session.CorpusSession`."""
        return None, None

    def _kernel_calls(self) -> Optional[int]:
        """Single-pass kernel batches behind the fresh evaluations —
        ``None`` when evaluation is not memoized (live sessions);
        overridden by :class:`~repro.corpus.session.CorpusSession`."""
        return None

    @property
    def failure_pid(self) -> str:
        self.analyze()
        return self._failure_pid

    @property
    def fully_discriminative(self) -> list[str]:
        self.analyze()
        return list(self._fully)

    def build_dag(self) -> ACDag:
        """Stage 4: temporal precedence → AC-DAG."""
        if self._dag is None:
            from ..api.events import DagBuilt

            self.analyze()
            failed_logs = [log for log in self._logs if log.failed]
            with self._span("dag-build"):
                self._dag = ACDag.build(
                    defs=dict(self._suite.defs),
                    failed_logs=failed_logs,
                    failure=self._failure_pid,
                    policy=self.config.policy or default_policy(),
                    candidate_pids=self._fully,
                )
            self._emit(
                DagBuilt(
                    n_nodes=self._dag.graph.number_of_nodes(),
                    n_edges=self._dag.graph.number_of_edges(),
                )
            )
        return self._dag

    def make_runner(self) -> SimulationRunner:
        """The fault-injecting intervention runner for this program."""
        self.analyze()
        corpus = self.collect()
        seeds = corpus.failing_seeds[: self.config.repeats]
        extra = self.config.repeats - len(seeds)
        if extra > 0:
            base = max(seeds, default=0) + 1_000_000
            seeds = seeds + [base + i for i in range(extra)]
        return SimulationRunner(
            # The simulator carries the strategy factory so intervention
            # re-executions schedule exactly like collection did.
            simulator=Simulator(
                self.program,
                max_steps=self.config.max_steps,
                strategy_factory=self._strategy_factory(),
            ),
            suite=self._suite,
            failure_pid=self._failure_pid,
            seeds=seeds,
            engine=self.config.engine,
            workload=self._workload_key(),
        )

    def _workload_key(self) -> str:
        """Cache namespace: everything that shapes this session's suite
        and simulator (so persisted outcomes never leak across
        incompatible configurations).  Custom extractors enter the key
        by class name; differently-*parameterized* instances of one
        extractor class still collide — construct the runner with an
        explicit ``workload`` for that case."""
        cfg = self.config
        key = (
            f"{self.program.name}"
            f"#s{cfg.start_seed}+{cfg.n_success}/{cfg.n_fail}"
            f"@{cfg.max_steps}"
        )
        if cfg.extractors is not None:
            names = ",".join(sorted(type(e).__name__ for e in cfg.extractors))
            key += f"!x[{names}]"
        if cfg.strategy is not None:
            params = ",".join(
                f"{k}={cfg.strategy_params[k]}"
                for k in sorted(cfg.strategy_params)
            )
            key += f"~{cfg.strategy}({params})"
        return key

    def run(self, approach: Approach | str = Approach.AID) -> SessionReport:
        """Stages 5-6: interventions, causal path, explanation."""
        dag = self.build_dag()
        runner = self.make_runner()
        rng = random.Random(self.config.rng_seed)
        with self._span("interventions"):
            discovery = discover(
                approach, dag, runner, rng=rng, engine=self.config.engine
            )
            # Rounds chain open->open (see ExecutionEngine.note_round);
            # close the last one inside the interventions span.
            if self.config.engine is not None:
                self.config.engine.end_rounds()
        explanation = explain(discovery, self._suite.defs)
        return SessionReport(
            program=self.program,
            corpus=self._corpus,
            suite=self._suite,
            debugger=self._debugger,
            fully_discriminative=list(self._fully),
            dag=dag,
            discovery=discovery,
            explanation=explanation,
            approach=Approach(approach),
            signature=self._signature,
        )


def debug(
    program: Program,
    approach: Approach | str = Approach.AID,
    config: Optional[SessionConfig] = None,
) -> SessionReport:
    """One-call AID: give it a flaky program, get root cause + story."""
    return AIDSession(program, config=config).run(approach)
