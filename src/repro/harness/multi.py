"""Debugging every failure signature of a program (paper Section 5.1).

Real programs can fail in several distinct ways; failure trackers group
failures by signature (stack/location), and AID debugs one group at a
time under the single-root-cause assumption.  :func:`debug_all`
automates the outer loop: collect one corpus, split the failures by
signature, and run a full AID session per signature — the "multiple
types of failures" direction the paper's conclusion sketches.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from ..core.variants import Approach
from ..sim.program import Program
from .runner import LabeledCorpus, collect
from .session import AIDSession, SessionConfig, SessionReport


@dataclass
class MultiSignatureReport:
    """One AID report per failure signature, with corpus statistics."""

    program: Program
    reports: dict[str, SessionReport] = field(default_factory=dict)
    signature_counts: Counter = field(default_factory=Counter)
    skipped: dict[str, str] = field(default_factory=dict)

    @property
    def signatures(self) -> list[str]:
        return sorted(self.reports)

    def render(self) -> str:
        lines = [f"Failure signatures of {self.program.name}:"]
        for signature, count in self.signature_counts.most_common():
            if signature in self.reports:
                report = self.reports[signature]
                root = report.discovery.root_cause or "(unexplained)"
                lines.append(
                    f"  {signature}  ×{count} — root cause: {root} "
                    f"({report.n_rounds} rounds)"
                )
            else:
                reason = self.skipped.get(signature, "skipped")
                lines.append(f"  {signature}  ×{count} — {reason}")
        return "\n".join(lines)


def debug_all(
    program: Program,
    config: Optional[SessionConfig] = None,
    min_failures: int = 10,
    approach: Approach | str = Approach.AID,
) -> MultiSignatureReport:
    """Run AID once per failure signature found in a shared corpus.

    Signatures with fewer than ``min_failures`` occurrences are reported
    but not debugged (too few failed logs for SD to be meaningful —
    collect more runs or raise ``config.n_fail``).
    """
    config = config or SessionConfig()
    base = collect(
        program,
        n_success=config.n_success,
        n_fail=config.n_fail,
        start_seed=config.start_seed,
        max_steps=config.max_steps,
    )
    result = MultiSignatureReport(
        program=program,
        signature_counts=Counter(
            t.failure.signature for t in base.failures
        ),
    )
    for signature, count in result.signature_counts.items():
        if count < min_failures:
            result.skipped[signature] = (
                f"only {count} failed runs (< {min_failures}); not debugged"
            )
            continue
        session = AIDSession(program, config)
        # Seed the session with the pre-split corpus: same successes,
        # only this signature's failures.
        session._corpus = LabeledCorpus(
            successes=list(base.successes),
            failures=[
                t for t in base.failures if t.failure.signature == signature
            ],
        )
        result.reports[signature] = session.run(approach)
    return result
