"""Labeled-corpus collection: many executions, split by outcome.

AID's learning phase needs logs from many successful and many failed
executions of the *same* program with the *same* input (the paper uses
50 + 50).  The simulator's only nondeterminism is the scheduling seed,
so collection is just a seed sweep until both quotas are met.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from ..sim.program import Program
from ..sim.schedule import SchedulerStrategy
from ..sim.scheduler import DEFAULT_MAX_STEPS, Simulator
from ..sim.tracing import ExecutionTrace


class CollectionError(RuntimeError):
    """The seed sweep could not fill the success/failure quotas."""


@dataclass
class LabeledCorpus:
    """Traces split by outcome, with the seeds that produced them."""

    successes: list[ExecutionTrace] = field(default_factory=list)
    failures: list[ExecutionTrace] = field(default_factory=list)

    @property
    def failing_seeds(self) -> list[int]:
        return [t.seed for t in self.failures]

    @property
    def succeeding_seeds(self) -> list[int]:
        return [t.seed for t in self.successes]

    @property
    def failure_rate(self) -> float:
        total = len(self.successes) + len(self.failures)
        return len(self.failures) / total if total else 0.0

    def dominant_failure_signature(self) -> Optional[str]:
        """The most common failure signature (AID targets one at a time)."""
        counts: dict[str, int] = {}
        for trace in self.failures:
            sig = trace.failure.signature
            counts[sig] = counts.get(sig, 0) + 1
        if not counts:
            return None
        return max(sorted(counts), key=lambda s: counts[s])

    def restrict_failures(self, signature: str) -> "LabeledCorpus":
        """Keep only failures with the given signature (failure grouping,
        Section 5.1: each signature is debugged separately)."""
        return LabeledCorpus(
            successes=list(self.successes),
            failures=[
                t for t in self.failures if t.failure.signature == signature
            ],
        )


def sweep(
    program: Program,
    start_seed: int = 0,
    max_steps: int = DEFAULT_MAX_STEPS,
    strategy_factory: Optional[
        Callable[[int], SchedulerStrategy]
    ] = None,
) -> Iterator[ExecutionTrace]:
    """Endless stream of traces from consecutive seeds.

    ``strategy_factory`` (seed → strategy) selects the scheduling
    strategy per execution; ``None`` keeps the historical seeded-uniform
    picker (byte-identical traces).
    """
    simulator = Simulator(
        program, max_steps=max_steps, strategy_factory=strategy_factory
    )
    seed = start_seed
    while True:
        yield simulator.run(seed).trace
        seed += 1


def collect(
    program: Program,
    n_success: int = 50,
    n_fail: int = 50,
    start_seed: int = 0,
    max_attempts: int = 20_000,
    max_steps: int = DEFAULT_MAX_STEPS,
    strategy_factory: Optional[
        Callable[[int], SchedulerStrategy]
    ] = None,
) -> LabeledCorpus:
    """Run the program until the corpus has the requested label counts.

    Raises :class:`CollectionError` when ``max_attempts`` executions do
    not produce the quotas — usually a sign the workload's failure rate
    is far from the intended ~10-50% band.
    """
    corpus = LabeledCorpus()
    attempts = 0
    for trace in sweep(
        program,
        start_seed=start_seed,
        max_steps=max_steps,
        strategy_factory=strategy_factory,
    ):
        attempts += 1
        if trace.failed and len(corpus.failures) < n_fail:
            corpus.failures.append(trace)
        elif not trace.failed and len(corpus.successes) < n_success:
            corpus.successes.append(trace)
        if len(corpus.failures) >= n_fail and len(corpus.successes) >= n_success:
            return corpus
        if attempts >= max_attempts:
            raise CollectionError(
                f"{program.name}: after {attempts} executions got "
                f"{len(corpus.successes)} successes and "
                f"{len(corpus.failures)} failures "
                f"(wanted {n_success}/{n_fail})"
            )
