"""repro.serve — the live telemetry service over the declarative API.

Role
----
The service split the ROADMAP asks for: a long-running, stdlib-only
HTTP daemon that accepts :class:`~repro.api.spec.RunSpec` bodies,
executes them on worker threads with full durable telemetry attached
(:class:`~repro.obs.JsonlRunLog` + :class:`~repro.obs.MetricsObserver`
per run), streams each run's enveloped event feed live over SSE/NDJSON
with replay-from-seq reconnects, and answers cross-run questions from
the :class:`~repro.obs.RunIndex` catalog — observability as the
service's first-class surface, not a bolt-on.

Pieces
------
* :class:`ReproServer` — the :class:`~http.server.ThreadingHTTPServer`
  daemon (``repro serve``);
* :class:`RunRegistry` / :class:`RunRecord` — run lifecycle, worker
  threads, the fleet metrics fold, and history queries;
* :mod:`~repro.serve.handlers` — the endpoint catalogue and error
  shapes;
* :mod:`~repro.serve.sse` — the event-stream pump over the run log;
* :func:`submit` — the ``repro submit`` client.

Invariant: the service never changes results.  ``POST /v1/runs``
returns a report byte-identical to ``repro run SPEC --json`` for the
same spec, and a replay of the event stream equals
:func:`~repro.obs.read_run_log` of the server-side JSONL (both asserted
in tests and the serve-smoke CI job).
"""

from __future__ import annotations

from .client import SubmitError, submit
from .registry import RunRecord, RunRegistry
from .server import ReproServer

__all__ = [
    "ReproServer",
    "RunRecord",
    "RunRegistry",
    "SubmitError",
    "submit",
]
