"""``repro submit`` — the thin HTTP client for a running serve daemon.

Role
----
The CLI-side half of the service split: load a RunSpec file, POST it to
``/v1/runs``, and print the versioned report to stdout **verbatim** —
the body is written through untouched, so ``repro submit SPEC > r.json``
produces the same bytes as ``repro run SPEC --json > r.json`` (the
serve-smoke CI job diffs exactly that).

``--follow`` submits asynchronously (``?wait=0``), then streams the
run's NDJSON event feed to *stderr* — each row rendered by the same
:func:`repro.obs.cli.render_log_row` that ``repro obs tail`` uses, so a
remote run reads like a local tail — and finally fetches the report to
stdout.  Structured service errors (the JSON bodies described in
:mod:`repro.serve.handlers`) surface as ``repro: submit:`` messages.

Only :mod:`urllib.request` is used; no new dependencies.
"""

from __future__ import annotations

import json
import sys
import urllib.error
import urllib.request
from typing import Optional, TextIO

from ..api.spec import RunSpec, SpecError
from ..obs.cli import render_log_row


class SubmitError(RuntimeError):
    """The daemon rejected the submission or is unreachable."""


def _request(url: str, data: Optional[bytes] = None):
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
    )
    try:
        return urllib.request.urlopen(request)
    except urllib.error.HTTPError as exc:
        detail = _structured_detail(exc)
        raise SubmitError(
            f"{url} -> HTTP {exc.code}: {detail}"
        ) from exc
    except urllib.error.URLError as exc:
        raise SubmitError(
            f"cannot reach {url}: {exc.reason} (is `repro serve` running?)"
        ) from exc


def _structured_detail(exc: "urllib.error.HTTPError") -> str:
    """The service's JSON error body as one readable line."""
    try:
        payload = json.loads(exc.read().decode())
    except (ValueError, OSError):
        return exc.reason
    error = payload.get("error", exc.reason)
    path = payload.get("path")
    detail = payload.get("detail")
    parts = [str(error)]
    if path:
        parts.append(f"at {path}")
    if detail:
        parts.append(str(detail))
    return ": ".join(parts)


def submit(
    server: str,
    spec_path: str,
    follow: bool = False,
    out: Optional[TextIO] = None,
    err: Optional[TextIO] = None,
) -> int:
    """Submit one spec file; returns a process exit status."""
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    server = server.rstrip("/")
    try:
        spec = RunSpec.load(spec_path)
    except SpecError as exc:
        raise SystemExit(f"repro: submit: {exc}") from exc
    body = json.dumps(spec.to_dict()).encode()
    try:
        if not follow:
            response = _request(f"{server}/v1/runs", data=body)
            out.write(response.read().decode())
            return 0
        response = _request(f"{server}/v1/runs?wait=0", data=body)
        accepted = json.loads(response.read().decode())
        run_id = accepted["run_id"]
        print(f"submitted {run_id} -> {server}", file=err)
        stream = _request(
            f"{server}/v1/runs/{run_id}/events?format=ndjson"
        )
        for raw in stream:
            line = raw.decode().strip()
            if not line:
                continue
            print(render_log_row(json.loads(line)), file=err)
        report = _request(f"{server}/v1/runs/{run_id}/report")
        out.write(report.read().decode())
        return 0
    except SubmitError as exc:
        raise SystemExit(f"repro: submit: {exc}") from exc
