"""The serve daemon: a threaded stdlib HTTP server around the registry.

Role
----
:class:`ReproServer` composes the pieces — a
:class:`~repro.serve.registry.RunRegistry` (worker threads + JSONL run
logs + cross-run index) behind a
:class:`~http.server.ThreadingHTTPServer` routing through
:class:`~repro.serve.handlers.ReproRequestHandler` — into the
long-running ``repro serve`` process.  Nothing here imports beyond the
standard library plus :mod:`repro` itself: the daemon runs wherever the
CLI runs.

Lifecycle::

    server = ReproServer(log_dir="runs", port=0)   # port 0: ephemeral
    server.start()          # background thread (tests, embedding)
    ...
    server.shutdown()

or, blocking (the CLI path)::

    ReproServer(log_dir="runs", port=8642).serve_forever()

Every connection gets its own handler thread (daemon threads, so a
dying process never hangs on an open event stream), and each submitted
run gets its own worker thread; the registry's lock is the only shared
mutable state.
"""

from __future__ import annotations

import threading
from http.server import ThreadingHTTPServer

from .handlers import ReproRequestHandler
from .registry import RunRegistry


class ReproServer(ThreadingHTTPServer):
    """The ``repro serve`` HTTP daemon (see module docstring)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        log_dir: str = "runs",
        host: str = "127.0.0.1",
        port: int = 8642,
        verbose: bool = False,
    ) -> None:
        self.registry = RunRegistry(log_dir)
        self.verbose = verbose
        self.lock = threading.Lock()
        #: route -> request count, for the /metrics exposition
        self.http_counters: dict[str, int] = {}
        self._thread: threading.Thread | None = None
        super().__init__((host, port), ReproRequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ReproServer":
        """Serve on a background thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        super().shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.server_close()
