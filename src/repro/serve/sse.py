"""Event-stream writing: one run's JSONL log as live SSE or NDJSON.

Role
----
``GET /v1/runs/{run_id}/events`` must show any subscriber — early,
late, or reconnecting — exactly what the durable log holds.  The
simplest correct way is to make the log the *only* source: the stream
is the raw ``runs/<run_id>.jsonl`` lines, polled through a
:class:`~repro.obs.runlog.JsonlCursor` (flushed-per-line writing makes
complete lines the unit of progress), so a replayed stream is
byte-identical to the file and a late subscriber sees the full history.

Two framings over the same rows:

* **NDJSON** (``application/x-ndjson``, the default): each log line
  verbatim, newline-terminated — what ``repro submit --follow`` reads;
* **SSE** (``text/event-stream``): enveloped rows become ``id: <seq>``
  + ``data: <line>`` messages; the header and trailing metrics rows are
  typed ``event: header`` / ``event: metrics``; a final ``event: end``
  marks orderly completion.  Reconnecting clients send the standard
  ``Last-Event-ID`` header (or ``?from_seq=N``) and resume after the
  last sequence number they saw.

The follow loop ends when the run is no longer active *and* the cursor
has drained — which covers finished runs (``run-finished`` + metrics
line), failed runs (valid prefix, no ``run-finished``), and historical
logs (never active).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from ..obs import JsonlCursor

#: seconds between polls of a live run's log
POLL_INTERVAL = 0.05


def sse_frame(line: str, row: dict) -> bytes:
    """One parsed log line as an SSE message."""
    if "seq" in row:
        return f"id: {row['seq']}\ndata: {line}\n\n".encode()
    event = "header" if "schema" in row else (row.get("kind") or "message")
    return f"event: {event}\ndata: {line}\n\n".encode()


def ndjson_frame(line: str, row: dict) -> bytes:
    return (line + "\n").encode()


def stream_run_log(
    path,
    write: Callable[[bytes], None],
    is_active: Callable[[], bool],
    sse: bool = False,
    from_seq: int = 0,
    poll_interval: float = POLL_INTERVAL,
    timeout: Optional[float] = None,
) -> int:
    """Pump a run log's rows through ``write`` until the run is over.

    ``write`` is called once per frame (the HTTP handler flushes);
    ``is_active`` is polled between drains — a registry callback for
    live runs, ``lambda: False`` for historical ones.  Returns the
    number of frames written.  A ``BrokenPipeError`` from ``write``
    (client went away) propagates to the caller, which treats it as a
    normal disconnect.
    """
    frame = sse_frame if sse else ndjson_frame
    cursor = JsonlCursor(path, from_seq=from_seq)
    deadline = time.monotonic() + timeout if timeout is not None else None
    frames = 0
    while True:
        rows = cursor.poll()
        for line, row in rows:
            write(frame(line, row))
            frames += 1
        if not rows:
            # Drain-then-check avoids the shutdown race: a run that
            # finished between our poll and the activity check gets one
            # more poll before the loop can exit.
            if not is_active():
                rows = cursor.poll()
                for line, row in rows:
                    write(frame(line, row))
                    frames += 1
                break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(poll_interval)
    if sse:
        write(b"event: end\ndata: {}\n\n")
    return frames
