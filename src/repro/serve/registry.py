"""The serve daemon's run registry: live runs, worker threads, history.

Role
----
:class:`RunRegistry` owns everything between "a RunSpec JSON body
arrived" and "the versioned report is durable":

* :meth:`submit` validates the body into a
  :class:`~repro.api.spec.RunSpec`, mints the run id *before* execution
  starts (so async submitters can subscribe to the event stream
  immediately), and launches :func:`repro.api.run` on a worker thread
  with a :class:`~repro.obs.JsonlRunLog` (spec digest stamped into the
  header) and a :class:`~repro.obs.MetricsObserver` attached;
* :class:`RunRecord` tracks each run's lifecycle
  (``running`` → ``finished`` | ``failed``) plus its report dict and
  log path — the in-memory truth the HTTP handlers read;
* the registry folds every finished run's metrics snapshot into one
  aggregate :class:`~repro.obs.MetricsRegistry` (the ``/metrics``
  exposition) and refreshes the cross-run
  :class:`~repro.obs.RunIndex` so ``GET /v1/runs`` sees runs from
  *previous* daemon lifetimes too.

Invariants
----------
* the report a worker computes is untouched by observability: the
  registry wires observers onto the bus directly (never
  :meth:`repro.obs.ObsContext.stamp`), so ``POST /v1/runs`` returns a
  payload byte-identical to ``repro run SPEC --json`` for the same
  spec — ``meta.run_id``/``meta.metrics`` stay ``None`` in both; the
  run id and metrics live in the JSONL log and the index instead;
* a failed run still leaves a valid JSONL prefix (the log closes in
  the worker's ``finally``) and stays queryable as ``failed``;
* all registry state is guarded by one lock; worker threads only
  touch their own record's fields plus the shared fold.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..api.events import EventBus, new_run_id
from ..api.runner import run as api_run
from ..api.spec import RunSpec, SpecError
from ..obs import (
    JsonlRunLog,
    MetricsObserver,
    MetricsRegistry,
    RunIndex,
)


@dataclass
class RunRecord:
    """One submitted run's lifecycle, as the HTTP handlers see it."""

    run_id: str
    spec: dict
    spec_digest: str
    status: str  # "running" | "finished" | "failed"
    created: float
    log_path: Path
    finished_at: Optional[float] = None
    #: the versioned report payload, once the worker lands it
    report: Optional[dict] = None
    error: Optional[str] = None
    thread: Optional[threading.Thread] = field(default=None, repr=False)

    @property
    def active(self) -> bool:
        return self.status == "running"

    def status_dict(self) -> dict:
        """The live-state block merged into ``GET /v1/runs`` rows."""
        return {
            "run_id": self.run_id,
            "status": self.status,
            "spec_digest": self.spec_digest,
            "created": self.created,
            "finished_at": self.finished_at,
            "error": self.error,
            "log": self.log_path.name,
        }


class RunRegistry:
    """Tracks every run this daemon executed, plus the on-disk history."""

    def __init__(self, log_dir) -> None:
        self.log_dir = Path(log_dir)
        self.log_dir.mkdir(parents=True, exist_ok=True)
        self.index = RunIndex(self.log_dir)
        #: run metrics aggregated across every finished/failed run
        self.fleet = MetricsRegistry()
        self.started = time.time()
        self._records: dict[str, RunRecord] = {}
        self._lock = threading.Lock()

    # -- submission ------------------------------------------------------

    def parse_spec(self, body: bytes) -> RunSpec:
        """A request body as a validated spec (:class:`SpecError` on any
        problem — the handler turns it into a structured 400)."""
        try:
            raw = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SpecError("", f"body is not valid JSON: {exc}") from exc
        spec = RunSpec.from_dict(raw)
        spec.validate()
        return spec

    def submit(self, spec: RunSpec) -> RunRecord:
        """Launch one validated spec on a worker thread; returns the
        record immediately (callers wanting the blocking behaviour join
        via :meth:`wait`)."""
        run_id = new_run_id()
        record = RunRecord(
            run_id=run_id,
            spec=spec.to_dict(),
            spec_digest=spec.digest(),
            status="running",
            created=time.time(),
            log_path=self.log_dir / f"{run_id}.jsonl",
        )
        bus = EventBus(run_id=run_id)
        registry = MetricsRegistry()
        bus.subscribe(MetricsObserver(registry))
        snapshot_once = _SnapshotOnce(registry)
        runlog = JsonlRunLog(
            self.log_dir,
            metrics=snapshot_once,
            header={"spec_digest": record.spec_digest},
        )
        bus.subscribe(runlog)

        def work() -> None:
            try:
                report = api_run(spec, bus=bus)
                record.report = report.to_dict()
                record.status = "finished"
            except Exception as exc:  # noqa: BLE001 - recorded, not raised
                record.error = f"{type(exc).__name__}: {exc}"
                record.status = "failed"
            finally:
                runlog.close()
                record.finished_at = time.time()
                with self._lock:
                    self.fleet.merge_snapshot(snapshot_once())

        record.thread = threading.Thread(
            target=work, name=f"repro-run-{run_id}", daemon=True
        )
        with self._lock:
            self._records[run_id] = record
        record.thread.start()
        return record

    def wait(self, record: RunRecord, timeout: Optional[float] = None) -> bool:
        """Block until the record's worker exits; False on timeout."""
        if record.thread is not None:
            record.thread.join(timeout)
            if record.thread.is_alive():
                return False
        return True

    # -- queries ---------------------------------------------------------

    def get(self, run_id: str) -> Optional[RunRecord]:
        with self._lock:
            return self._records.get(run_id)

    def records(self) -> list[RunRecord]:
        with self._lock:
            return list(self._records.values())

    def is_active(self, run_id: str) -> bool:
        record = self.get(run_id)
        return record is not None and record.active

    def counts(self) -> dict:
        with self._lock:
            by_status: dict[str, int] = {}
            for record in self._records.values():
                by_status[record.status] = by_status.get(record.status, 0) + 1
        return {
            "active": by_status.get("running", 0),
            "finished": by_status.get("finished", 0),
            "failed": by_status.get("failed", 0),
        }

    def catalog(self) -> list[dict]:
        """Every known run, newest first: the refreshed on-disk index
        rows, overlaid with live status for runs this daemon owns."""
        self.index.refresh()
        rows = {entry["run_id"]: dict(entry) for entry in self.index.rows()}
        for record in self.records():
            row = rows.setdefault(record.run_id, {"run_id": record.run_id})
            row.update(record.status_dict())
        return sorted(
            rows.values(),
            key=lambda r: (-(r.get("created") or 0), r.get("run_id", "")),
        )

    def detail(self, run_id: str) -> Optional[dict]:
        """One run's full view: index record + live status + span tree.

        ``None`` means the run id is unknown to both the registry and
        the log directory.
        """
        from ..obs import (
            RunLogError,
            read_run_log,
            render_span_tree,
            summarize,
            summary_dict,
        )

        record = self.get(run_id)
        row: dict = {}
        try:
            summary = summarize(read_run_log(self.log_dir / f"{run_id}.jsonl"))
            row = summary_dict(summary)
            row["spans"] = render_span_tree(summary)
        except (RunLogError, OSError):
            if record is None:
                return None
        if record is not None:
            row.update(record.status_dict())
        else:
            row.setdefault("status", row.get("outcome", "unknown"))
        return row

    def report_for(self, run_id: str) -> Optional[dict]:
        """The versioned report payload of a finished run — from the
        live record when this daemon ran it, else replayed from the
        ``run-finished`` line of the on-disk log."""
        record = self.get(run_id)
        if record is not None and record.report is not None:
            return record.report
        from ..obs import RunLogError, read_run_log

        try:
            replay = read_run_log(self.log_dir / f"{run_id}.jsonl")
        except (RunLogError, OSError):
            return None
        finished = replay.events.first("run-finished")
        if finished is None:
            return None
        report = finished.report
        return report if isinstance(report, dict) else None


class _SnapshotOnce:
    """A metrics snapshot computed once and cached — the run log's
    trailing metrics line and the fleet fold see the same numbers."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry
        self._snapshot: Optional[dict] = None

    def __call__(self) -> dict:
        if self._snapshot is None:
            self._snapshot = self._registry.snapshot()
        return self._snapshot
