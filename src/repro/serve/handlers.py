"""HTTP request handling for the serve daemon: routes and renderings.

Role
----
:class:`ReproRequestHandler` is the one
:class:`~http.server.BaseHTTPRequestHandler` behind every endpoint:

====================================  ====================================
``POST /v1/runs``                     submit a RunSpec JSON body; blocks
                                      and returns the versioned report
                                      (``?wait=0``: 202 + links
                                      immediately)
``GET /v1/runs``                      the cross-run catalog (index rows
                                      overlaid with live status)
``GET /v1/runs/{id}``                 one run's detail: summary record,
                                      live status, ASCII span tree
``GET /v1/runs/{id}/events``          the event stream — NDJSON by
                                      default, SSE with
                                      ``Accept: text/event-stream`` or
                                      ``?format=sse``; ``?from_seq=N`` /
                                      ``Last-Event-ID`` replays from a
                                      sequence number; ``?follow=0``
                                      dumps-and-closes
``GET /v1/runs/{id}/report``          the stored report payload, bytes
                                      identical to the ``POST`` response
``GET /healthz``                      liveness + run counts
``GET /metrics``                      text exposition: process gauges +
                                      the aggregated fleet registry
====================================  ====================================

Error shape: every non-2xx body is a JSON object with a stable
``error`` discriminator — malformed specs surface
:meth:`repro.api.spec.SpecError.to_dict` (``invalid-spec`` + dotted
path + detail) as a 400, unknown run ids are
``{"error": "not-found"}`` 404s, and a failed run's report request is a
``{"error": "run-failed"}`` 500 carrying the worker's exception text.

The handler threads are the concurrency model: ThreadingHTTPServer
gives each connection its own thread, so long-lived event streams
coexist with submissions; blocking POSTs execute on the registry's
worker thread and merely join it.
"""

from __future__ import annotations

import json
import sys
import time
from http.server import BaseHTTPRequestHandler
from typing import Optional
from urllib.parse import parse_qs, urlparse

from ..api.spec import SpecError
from .sse import stream_run_log

API_VERSION = 1


def render_exposition(server) -> str:
    """The ``/metrics`` text format: one ``name{labels} value`` line per
    metric — process gauges first, then the aggregated per-run registry
    (counters summed, timers summed across every finished run)."""
    registry = server.registry
    lines = [
        "# repro.serve text exposition",
        f"repro_uptime_seconds {time.time() - registry.started:.3f}",
    ]
    counts = registry.counts()
    for name, value in sorted(counts.items()):
        lines.append(f'repro_runs{{status="{name}"}} {value}')
    lines.append(f"repro_indexed_runs {len(registry.index)}")
    for name, value in sorted(server.http_counters.items()):
        lines.append(f'repro_http_requests_total{{route="{name}"}} {value}')
    snapshot = registry.fleet.snapshot()
    for name, value in snapshot["counters"].items():
        lines.append(f'repro_run_counter{{name="{name}"}} {value}')
    for name, value in snapshot["gauges"].items():
        lines.append(f'repro_run_gauge{{name="{name}"}} {value}')
    for name, cell in snapshot["timers"].items():
        lines.append(
            f'repro_run_timer_seconds_total{{name="{name}"}} {cell["total"]}'
        )
        lines.append(
            f'repro_run_timer_count{{name="{name}"}} {cell["count"]}'
        )
    return "\n".join(lines) + "\n"


class ReproRequestHandler(BaseHTTPRequestHandler):
    """Routes one connection; ``self.server`` is the ReproServer."""

    server_version = "repro-serve/1"

    # -- plumbing --------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            print(
                f"[serve] {self.address_string()} {format % args}",
                file=sys.stderr,
            )

    def _send_json(self, status: int, payload: object) -> None:
        body = (
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        ).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self, status: int, text: str, content_type: str = "text/plain"
    ) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, error: str, **extra) -> None:
        self._send_json(status, {"error": error, **extra})

    def _count(self, route: str) -> None:
        with self.server.lock:
            counters = self.server.http_counters
            counters[route] = counters.get(route, 0) + 1

    # -- dispatch --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        url = urlparse(self.path)
        query = parse_qs(url.query)
        parts = [p for p in url.path.split("/") if p]
        try:
            if url.path == "/healthz":
                self._count("/healthz")
                return self._healthz()
            if url.path == "/metrics":
                self._count("/metrics")
                return self._metrics()
            if parts[:2] == ["v1", "runs"]:
                if len(parts) == 2:
                    self._count("/v1/runs")
                    return self._list_runs()
                run_id = parts[2]
                if len(parts) == 3:
                    self._count("/v1/runs/{id}")
                    return self._run_detail(run_id)
                if len(parts) == 4 and parts[3] == "events":
                    self._count("/v1/runs/{id}/events")
                    return self._run_events(run_id, query)
                if len(parts) == 4 and parts[3] == "report":
                    self._count("/v1/runs/{id}/report")
                    return self._run_report(run_id)
            self._error(404, "not-found", path=url.path)
        except BrokenPipeError:
            pass  # client went away mid-stream; nothing to clean up
        except ConnectionResetError:
            pass
        except Exception as exc:  # noqa: BLE001 - a daemon must answer
            self._internal_error(exc)

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        url = urlparse(self.path)
        query = parse_qs(url.query)
        try:
            if url.path == "/v1/runs":
                self._count("POST /v1/runs")
                return self._submit(query)
            self._error(404, "not-found", path=url.path)
        except BrokenPipeError:
            pass
        except ConnectionResetError:
            pass
        except Exception as exc:  # noqa: BLE001 - a daemon must answer
            self._internal_error(exc)

    def _internal_error(self, exc: Exception) -> None:
        """Last-resort 500: an unexpected handler crash must still send
        a structured response, never silently drop the connection."""
        import traceback

        print(
            f"repro serve: unhandled error on {self.command} {self.path}: "
            f"{exc!r}",
            file=sys.stderr,
        )
        if self.server.verbose:
            traceback.print_exc(file=sys.stderr)
        try:
            self._error(
                500, "internal", detail=f"{type(exc).__name__}: {exc}"
            )
        except OSError:
            pass  # response channel already gone

    # -- endpoints -------------------------------------------------------

    def _submit(self, query: dict) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length)
        registry = self.server.registry
        try:
            spec = registry.parse_spec(body)
        except SpecError as exc:
            return self._send_json(400, exc.to_dict())
        record = registry.submit(spec)
        links = {
            "self": f"/v1/runs/{record.run_id}",
            "events": f"/v1/runs/{record.run_id}/events",
            "report": f"/v1/runs/{record.run_id}/report",
        }
        if query.get("wait", ["1"])[0] in ("0", "false", "no"):
            return self._send_json(
                202,
                {
                    "run_id": record.run_id,
                    "status": record.status,
                    "spec_digest": record.spec_digest,
                    "links": links,
                },
            )
        registry.wait(record)
        if record.status == "failed":
            return self._error(
                500, "run-failed", run_id=record.run_id, detail=record.error
            )
        # The report payload, serialized exactly as `repro run --json`
        # prints it — byte-identity is the contract (asserted in tests
        # and the serve-smoke CI job).
        self._send_json(200, record.report)

    def _list_runs(self) -> None:
        self._send_json(
            200,
            {
                "api": API_VERSION,
                "runs": self.server.registry.catalog(),
            },
        )

    def _run_detail(self, run_id: str) -> None:
        detail = self.server.registry.detail(run_id)
        if detail is None:
            return self._error(404, "not-found", run_id=run_id)
        self._send_json(200, detail)

    def _run_report(self, run_id: str) -> None:
        registry = self.server.registry
        record = registry.get(run_id)
        if record is not None and record.active:
            registry.wait(record)
        if record is not None and record.status == "failed":
            return self._error(
                500, "run-failed", run_id=run_id, detail=record.error
            )
        report = registry.report_for(run_id)
        if report is None:
            return self._error(404, "not-found", run_id=run_id)
        self._send_json(200, report)

    def _run_events(self, run_id: str, query: dict) -> None:
        registry = self.server.registry
        record = registry.get(run_id)
        log_path = registry.log_dir / f"{run_id}.jsonl"
        if record is None and not log_path.exists():
            return self._error(404, "not-found", run_id=run_id)
        sse = query.get("format", [""])[0] == "sse" or (
            "text/event-stream" in (self.headers.get("Accept") or "")
        )
        from_seq = _int_param(
            query, "from_seq", self.headers.get("Last-Event-ID")
        )
        follow = query.get("follow", ["1"])[0] not in ("0", "false", "no")
        self.send_response(200)
        self.send_header(
            "Content-Type",
            "text/event-stream" if sse else "application/x-ndjson",
        )
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()

        def write(frame: bytes) -> None:
            self.wfile.write(frame)
            self.wfile.flush()

        stream_run_log(
            log_path,
            write,
            is_active=(
                (lambda: registry.is_active(run_id)) if follow
                else (lambda: False)
            ),
            sse=sse,
            from_seq=from_seq,
        )

    def _healthz(self) -> None:
        registry = self.server.registry
        self._send_json(
            200,
            {
                "status": "ok",
                "api": API_VERSION,
                "uptime": round(time.time() - registry.started, 3),
                "log_dir": str(registry.log_dir),
                "runs": registry.counts(),
            },
        )

    def _metrics(self) -> None:
        self._send_text(200, render_exposition(self.server))


def _int_param(query: dict, name: str, fallback: Optional[str]) -> int:
    raw = query.get(name, [fallback])[0]
    try:
        return int(raw) if raw else 0
    except (TypeError, ValueError):
        return 0
