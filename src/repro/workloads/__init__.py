"""``repro.workloads`` — the six case studies plus the synthetic generator."""

from . import buildandtest, cosmosdb, healthtelemetry, kafka, network, npgsql  # noqa: F401
from .common import REGISTRY, PaperRow, Workload
from .synthetic import (
    FAILURE_PID,
    OracleRunner,
    SyntheticApp,
    SyntheticSpec,
    generate_app,
    generate_batch,
    spec_for_maxt,
)

__all__ = [
    "FAILURE_PID",
    "OracleRunner",
    "PaperRow",
    "REGISTRY",
    "SyntheticApp",
    "SyntheticSpec",
    "Workload",
    "generate_app",
    "generate_batch",
    "spec_for_maxt",
]
