"""Shared scaffolding for the six case-study workloads (Section 7.1).

Every case study follows the same anatomy, mirroring how the paper's
real bugs behave:

* a **bug core** — the nondeterministic mechanism (data race, use after
  free, cache-expiry timing, order violation, collision) that dooms an
  execution under specific interleavings/draws;
* a **doomed-path cascade** — once doomed, the program deterministically
  exhibits a chain of misbehaviours ending in the failure; every
  predicate on this chain is fully discriminative, and only the
  counterfactually-gating ones are causal;
* **diagnostic threads** — doom-triggered side threads running probe
  methods.  These create the AC-DAG's junctions and the spurious
  branches that branch pruning removes.  The doomed path *joins* them
  before failing so their predicates always precede F;
* optionally **post-failure activity** (cleanup after the crash), which
  yields fully-discriminative predicates with no temporal path to F —
  the 30 discarded predicates of the paper's Kafka study.

:func:`add_diag_worker` builds the diagnostic threads; :class:`Workload`
and :class:`PaperRow` carry a case study and its Figure 7 reference
numbers for EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import MutableMapping, Optional

from ..api.registry import workloads as _WORKLOAD_REGISTRY
from ..sim.errors import SimulatedError
from ..sim.program import MethodFn, Program


@dataclass(frozen=True)
class PaperRow:
    """One row of Figure 7 — the numbers we compare against."""

    github_issue: str
    sd_predicates: int
    causal_path_len: int
    aid_interventions: int
    tagt_interventions: int


@dataclass
class Workload:
    """A case-study program plus its ground truth and paper reference."""

    name: str
    program: Program
    paper: PaperRow
    #: substrings that must appear (in order) in the discovered causal
    #: path pids — the workload's ground truth.
    expected_path_markers: tuple[str, ...]
    #: what the root-cause predicate's pid must contain.
    root_marker: str
    description: str = ""
    #: harness tweaks (e.g. a higher failure-rate start seed)
    n_success: int = 50
    n_fail: int = 50
    repeats: int = 25


def add_probe(
    methods: MutableMapping[str, MethodFn],
    name: str,
    throws: Optional[str] = None,
    work: int = 2,
) -> str:
    """Register a read-only diagnostic probe method.

    Probes run only on the doomed path, so each contributes one
    "executes" predicate; a throwing probe (whose exception the caller
    catches) contributes a method-fails predicate as well.
    """

    def probe(ctx):
        yield from ctx.work(work)
        if throws is not None:
            ctx.throw(throws, f"{name} diagnostic signal")
        return f"{name}-ok"

    methods[name] = probe
    return name


def add_diag_worker(
    methods: MutableMapping[str, MethodFn],
    worker: str,
    probes: list[tuple[str, Optional[str]]],
) -> str:
    """Register a diagnostic worker thread method running ``probes``.

    ``probes`` is a list of ``(probe_name, throws_kind_or_None)``.  The
    worker swallows probe exceptions (they are diagnostics, not the
    failure) and is itself read-only, so all its predicates are safely
    intervenable noise.
    """
    probe_names = [
        add_probe(methods, probe_name, throws=kind) for probe_name, kind in probes
    ]

    def worker_fn(ctx):
        yield from ctx.work(1)
        for probe_name in probe_names:
            try:
                yield from ctx.call(probe_name)
            except SimulatedError:
                pass  # diagnostics may fail; the worker soldiers on
        return f"{worker}-done"

    methods[worker] = worker_fn
    return worker


def readonly_names(
    methods: MutableMapping[str, MethodFn], *extra: str
) -> frozenset[str]:
    """All probe/worker methods plus ``extra`` as the read-only set."""
    auto = {
        name
        for name in methods
        if name.lower().startswith(("probe", "diag", "check", "get", "lookup"))
    }
    return frozenset(auto | set(extra))


#: The case-study registry — the *same object* as
#: :data:`repro.api.registry.workloads`, so bundled and third-party
#: workloads share one namespace (and one ``RegistryError`` behaviour).
REGISTRY = _WORKLOAD_REGISTRY
