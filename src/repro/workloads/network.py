"""Case study 4: "Network" — data-center control plane (proprietary).

The paper reports a Microsoft-internal control-plane service whose
intermittent failure took months to localize; AID identified a *random
number collision* as the root cause, with a causal path of just one
predicate, found in 2 interventions (TAGT worst case: 5).

Model: two services allocate session identifiers from a small id space;
when the draws collide, route registration hits a duplicate key and the
control plane crashes.  The collision itself is invisible to the
predicate vocabulary (id values vary across successful runs, so no
return-value predicate forms) — the *closest available* predicate is the
duplicate-key failure of ``RegisterRoute``, which is exactly the paper's
point that AID finds the nearest intervenable predicate to the true root
cause (Section 4, "Completeness of AC-DAG").

Ground-truth causal path (1 predicate):  fails(DuplicateKey)[RegisterRoute] → F
"""

from __future__ import annotations

from ..sim.program import Program
from .common import REGISTRY, PaperRow, Workload, add_diag_worker

#: Session ids are drawn from [1, ID_SPACE]; collisions are the
#: intermittency source (P ≈ 1/ID_SPACE ≈ 0.2).
ID_SPACE = 5


def _net_main(ctx):
    a = yield from ctx.call("AllocateSessionId", "svcA")
    b = yield from ctx.call("AllocateSessionId", "svcB")
    ctx.poke("ids", (a, b))
    yield from ctx.call("SetupTopology")
    yield from ctx.call("RegisterRoute")
    return "running"


def _allocate_session_id(ctx, service):
    yield from ctx.work(3)
    return ctx.randint(1, ID_SPACE)


def _setup_topology(ctx):
    yield from ctx.work(10)
    return "topology"


def _register_route(ctx):
    """Registers both sessions' routes; duplicate ids cannot coexist."""
    a, b = ctx.peek("ids")
    conflict = yield from ctx.call("CheckConflict", a == b)
    yield from ctx.call("GetRouteHealth", a == b)
    yield from ctx.call("ValidateTopology", a == b)
    if a == b:
        # Doomed: duplicate session id.  Diagnostics fire, then the
        # registration throws and takes the control plane down.
        yield from ctx.call("EnterConflictPath")
        yield from ctx.call("LogCollision")
        yield from ctx.call("ResolveOwner")
        yield from ctx.call("RebuildRouteCache")
        yield from ctx.call("NotifyPeers")
        yield from ctx.call("QuarantineSession")
        yield from ctx.spawn("diagF", "DiagFabricWorker")
        yield from ctx.join("diagF")
        ctx.throw("DuplicateKey", f"session id {a} registered twice ({conflict})")
    return "registered"


def _check_conflict(ctx, colliding):
    yield from ctx.work(2)
    return "conflict" if colliding else "none"


def _get_route_health(ctx, colliding):
    yield from ctx.work(2)
    return "unhealthy" if colliding else "healthy"


def _validate_topology(ctx, colliding):
    yield from ctx.work(60 if colliding else 4)
    return "validated"


def _enter_conflict_path(ctx):
    yield from ctx.work(2)
    return None


def _log_collision(ctx):
    yield from ctx.work(2)
    return None


def _doom_step(ctx):
    yield from ctx.work(2)
    return None


def build() -> Workload:
    methods = {
        "NetMain": _net_main,
        "AllocateSessionId": _allocate_session_id,
        "SetupTopology": _setup_topology,
        "RegisterRoute": _register_route,
        "CheckConflict": _check_conflict,
        "GetRouteHealth": _get_route_health,
        "ValidateTopology": _validate_topology,
        "EnterConflictPath": _enter_conflict_path,
        "LogCollision": _log_collision,
        "ResolveOwner": _doom_step,
        "RebuildRouteCache": _doom_step,
        "NotifyPeers": _doom_step,
        "QuarantineSession": _doom_step,
    }
    add_diag_worker(
        methods,
        "DiagFabricWorker",
        probes=[
            ("ProbeFabricLinks", None),
            ("ProbeFabricBgp", "ProbeError"),
            ("ProbeFabricAcls", None),
            ("ProbeFabricVips", None),
            ("ProbeFabricNat", "ProbeError"),
            ("ProbeFabricMtu", None),
            ("ProbeFabricArp", None),
            ("ProbeFabricLldp", "ProbeError"),
            ("ProbeFabricQos", None),
            ("ProbeFabricVxlan", None),
            ("ProbeFabricEcmp", "ProbeError"),
            ("ProbeFabricBfd", None),
            ("ProbeFabricFlow", None),
        ],
    )

    readonly = frozenset(
        name
        for name in methods
        if name.startswith(("Probe", "Diag", "Check", "Get"))
    ) | frozenset(
        {
            "RegisterRoute",
            "ValidateTopology",
            "EnterConflictPath",
            "LogCollision",
        }
    )
    program = Program(
        name="network-controlplane",
        methods=methods,
        main="NetMain",
        shared={},
        readonly_methods=readonly,
        description="control-plane session-id collision (proprietary model)",
    )
    return Workload(
        name="network",
        program=program,
        paper=PaperRow(
            github_issue="(proprietary)",
            sd_predicates=24,
            causal_path_len=1,
            aid_interventions=2,
            tagt_interventions=5,
        ),
        expected_path_markers=("fails(DuplicateKey)[main:RegisterRoute#0]",),
        root_marker="fails(DuplicateKey)[main:RegisterRoute#0]",
        description="random session-id collision crashes route registration",
    )


REGISTRY.register("network")(build)
