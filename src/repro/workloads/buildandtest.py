"""Case study 5: "BuildAndTest" — CI build/test platform (proprietary).

The paper reports an internal build-and-test platform whose intermittent
failure was an *order violation of two events*.  Model: a builder thread
compiles while a packager thread waits for the compile to land and then
packages the artifacts.  The packager's wait is a misconfigured fixed
timeout — under the short draw it gives up before the compile finishes
(the paper-cited flaky-test pattern: "the test does not wait properly
for asynchronous calls"), packages a partial artifact set, and the test
run fails.

Ground-truth causal path (3 predicates, as in Figure 7):

    order[CompileStep ≺ PackageStep violated]
    → wrongret[CollectArtifacts] → fails(TestFailure)[RunTests] → F
"""

from __future__ import annotations

from ..sim.program import Program
from .common import REGISTRY, PaperRow, Workload, add_diag_worker

#: Compile duration (with mild jitter).
COMPILE_TICKS = 150
COMPILE_JITTER = 15
#: The packager's wait-for-compile: the long draw is safe, the short
#: draw fires before the compile lands (the bug).  Discrete dichotomy →
#: crisp predicates.
PATIENT_WAIT_TICKS = 300
IMPATIENT_WAIT_TICKS = 50
IMPATIENT_PROBABILITY = 0.3


def _ci_main(ctx):
    impatient = ctx.rand() < IMPATIENT_PROBABILITY
    ctx.poke("wait_ticks", IMPATIENT_WAIT_TICKS if impatient else PATIENT_WAIT_TICKS)
    yield from ctx.spawn("builder", "BuildJob")
    yield from ctx.spawn("packager", "PackageJob")
    yield from ctx.join("builder")
    yield from ctx.join("packager")
    return "pipeline-done"


def _build_job(ctx):
    yield from ctx.call("CompileStep")
    return "built"


def _compile_step(ctx):
    yield from ctx.work(COMPILE_TICKS + ctx.randint(0, COMPILE_JITTER))
    ctx.poke("compile_done", True)
    yield from ctx.work(2)
    return "compiled"


def _package_job(ctx):
    # The misconfigured wait lives in this (non-read-only) wrapper, so
    # its duration predicates are unsafe to intervene and drop out —
    # the order violation below is the predicate that captures the bug.
    yield from ctx.work(ctx.peek("wait_ticks"))
    yield from ctx.call("PackageStep")
    return "packaged"


def _package_step(ctx):
    artifacts = yield from ctx.call("CollectArtifacts")
    partial = artifacts != "complete"
    yield from ctx.call("GetArtifactCount", partial)
    yield from ctx.call("VerifyManifest", partial)
    if partial:
        yield from ctx.call("EnterPartialMode")
        yield from ctx.spawn("diagB", "DiagBuildGraphWorker")
        yield from ctx.spawn("diagT", "DiagTestBedWorker")
        yield from ctx.join("diagB")
        yield from ctx.join("diagT")
    yield from ctx.call("RunTests", artifacts)
    return "package-ok"


def _collect_artifacts(ctx):
    yield from ctx.work(4)
    done = ctx.peek("compile_done")
    return "complete" if done else "partial"


def _get_artifact_count(ctx, partial):
    yield from ctx.work(2)
    return 3 if partial else 12


def _verify_manifest(ctx, partial):
    yield from ctx.work(80 if partial else 5)
    return "verified"


def _enter_partial_mode(ctx):
    yield from ctx.work(2)
    return None


def _run_tests(ctx, artifacts):
    yield from ctx.work(6)
    if artifacts != "complete":
        ctx.throw("TestFailure", "tests ran against partial artifacts")
    return "tests-green"


def build() -> Workload:
    methods = {
        "CiMain": _ci_main,
        "BuildJob": _build_job,
        "CompileStep": _compile_step,
        "PackageJob": _package_job,
        "PackageStep": _package_step,
        "CollectArtifacts": _collect_artifacts,
        "GetArtifactCount": _get_artifact_count,
        "VerifyManifest": _verify_manifest,
        "EnterPartialMode": _enter_partial_mode,
        "RunTests": _run_tests,
    }
    diag_probes = {
        "DiagBuildGraphWorker": [
            ("ProbeGraphNodes", None),
            ("ProbeGraphHashes", "ProbeError"),
            ("ProbeGraphCache", None),
            ("ProbeGraphDeps", None),
            ("ProbeGraphToolchain", "ProbeError"),
        ],
        "DiagTestBedWorker": [
            ("ProbeBedImage", None),
            ("ProbeBedQuota", "ProbeError"),
            ("ProbeBedAgents", None),
            ("ProbeBedArtifacts", None),
            ("ProbeBedSymbols", "ProbeError"),
            ("ProbeBedLogs", None),
            ("ProbeBedNetwork", None),
        ],
    }
    for worker, probes in diag_probes.items():
        add_diag_worker(methods, worker, probes)

    readonly = frozenset(
        name
        for name in methods
        if name.startswith(("Probe", "Diag", "Get", "Check"))
    ) | frozenset(
        {
            # PackageStep itself assembles package output (mutating), so
            # it is deliberately NOT read-only: its method-fails
            # predicate is unsafe to intervene and drops out, leaving
            # RunTests as the failure-side causal predicate.
            "CollectArtifacts",
            "VerifyManifest",
            "EnterPartialMode",
            "RunTests",
        }
    )
    program = Program(
        name="buildandtest-ci",
        methods=methods,
        main="CiMain",
        shared={},
        readonly_methods=readonly,
        description="CI order violation: packaging starts before compile lands",
    )
    return Workload(
        name="buildandtest",
        program=program,
        paper=PaperRow(
            github_issue="(proprietary)",
            sd_predicates=25,
            causal_path_len=3,
            aid_interventions=10,
            tagt_interventions=15,
        ),
        expected_path_markers=(
            "order[",
            "wrongret[packager:CollectArtifacts#0]",
            "fails(TestFailure)[packager:RunTests#0]",
        ),
        root_marker="order[",
        description="order violation between compile and package steps",
    )


REGISTRY.register("buildandtest")(build)
