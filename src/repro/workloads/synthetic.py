"""Synthetic applications with known ground truth (paper Section 7.2).

The paper evaluates intervention counts on 500 generated multi-threaded
applications per setting, sweeping the maximum thread count MAXt from 2
to 40+, with N ∈ [4, 284] predicates and the number of causal predicates
drawn from ``[1, N / log N]``.  The metric is purely *how many
intervention rounds* each approach needs — so instead of simulating
threads, the generator builds the predicate-level ground truth directly:

* a layered AC-DAG shaped like real multi-threaded executions: ``J``
  sequential phases (junction levels), each phase fanning into per-thread
  runs of consecutive predicates (compare the symmetric AC-DAG of
  Figure 5(c), here randomized);
* a true causal path — a chain through the DAG — whose predicates
  deterministically propagate to the failure (Assumption 2);
* noise predicates, each wired to a *parent* (a causal predicate, an
  earlier noise predicate, or the always-on root) so they are fully
  discriminative yet non-causal — exactly the P7/P10 patterns of the
  paper's illustrative example.

:class:`OracleRunner` answers intervention rounds from this model: a
predicate occurs iff it is not intervened on and its parent occurred;
the failure occurs iff the last causal predicate occurred.  This is the
same information a real re-execution provides, at zero cost, which is
what makes 500-app sweeps practical.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

import networkx as nx

from ..core.acdag import ACDag
from ..core.intervention import RunOutcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.cache import RunRequest
    from ..exec.engine import ExecutionEngine

FAILURE_PID = "F"


@dataclass(frozen=True)
class SyntheticSpec:
    """Generator knobs (defaults follow the paper's Section 7.2 setup)."""

    max_threads: int = 8  # the paper's MAXt
    min_threads: int = 2
    phases: tuple[int, int] = (2, 8)  # junction levels J
    run_length: tuple[int, int] = (1, 4)  # predicates per thread per phase
    #: Cap on concurrently active threads per phase; real executions
    #: rarely have all T threads in every program phase, and the paper's
    #: N stays ≤ 284 even at MAXt 40.
    max_active: int = 14

    def validate(self) -> None:
        if self.min_threads < 1 or self.max_threads < self.min_threads:
            raise ValueError("invalid thread bounds")
        if self.phases[0] < 1 or self.phases[1] < self.phases[0]:
            raise ValueError("invalid phase bounds")


@dataclass
class SyntheticApp:
    """One generated application: AC-DAG + ground-truth causal model."""

    dag: ACDag
    causal_path: list[str]  # ordered, excluding F
    parents: dict[str, Optional[str]]  # noise pid -> parent pid (None = root)
    n_threads: int
    seed: int

    @property
    def n_predicates(self) -> int:
        return len(self.dag.predicates)

    @property
    def n_causal(self) -> int:
        return len(self.causal_path)

    def runner(self, engine: Optional["ExecutionEngine"] = None) -> "OracleRunner":
        return OracleRunner(self, engine=engine)


class OracleRunner:
    """Intervention runner answering from the ground-truth model.

    Like :class:`~repro.core.intervention.SimulationRunner`, all its
    answers flow through an execution engine, so oracle-driven sweeps
    (Figure 8) get the same memoization, persistence, and accounting as
    simulator-backed sessions.  The model is deterministic, so one
    request (seed 0) per group suffices.
    """

    def __init__(
        self,
        app: SyntheticApp,
        engine: Optional["ExecutionEngine"] = None,
    ) -> None:
        self.app = app
        self._topo = self.app.dag.topological_order()
        self._causal_index = {pid: i for i, pid in enumerate(app.causal_path)}
        if engine is None:
            from ..exec.engine import ExecutionEngine

            engine = ExecutionEngine()
        self.engine = engine
        # The generation seed alone is ambiguous (the same seed under a
        # different SyntheticSpec yields a different model), so the key
        # fingerprints the ground truth the outcomes actually depend on.
        model = repr(
            (app.causal_path, sorted(app.parents.items()), self._topo)
        ).encode()
        fingerprint = hashlib.md5(model).hexdigest()[:12]
        self.workload = f"synthetic/{app.seed}/{fingerprint}"

    def execute_request(self, request: "RunRequest") -> RunOutcome:
        return self._model_outcome(request.pids)

    def _request(self, pids: frozenset[str]) -> "RunRequest":
        from ..exec.cache import RunRequest

        return RunRequest(self.workload, 0, pids)

    def run_group(self, pids: frozenset[str]) -> list[RunOutcome]:
        return list(
            self.engine.run_group(
                [self._request(pids)], self.execute_request, early_stop=False
            )
        )

    def run_group_batch(
        self, groups: Sequence[frozenset[str]]
    ) -> list[list[RunOutcome]]:
        return [
            list(outcomes)
            for outcomes in self.engine.run_independent_groups(
                [[self._request(pids)] for pids in groups],
                self.execute_request,
                early_stop=False,
            )
        ]

    def _model_outcome(self, pids: frozenset[str]) -> RunOutcome:
        occurred: set[str] = set()
        path = self.app.causal_path
        for pid in self._topo:
            if pid == FAILURE_PID or pid in pids:
                continue
            if pid in self._causal_index:
                idx = self._causal_index[pid]
                if idx == 0 or path[idx - 1] in occurred:
                    occurred.add(pid)
            else:
                parent = self.app.parents.get(pid)
                if parent is None or parent in occurred:
                    occurred.add(pid)
        failed = bool(path) and path[-1] in occurred
        if failed:
            occurred.add(FAILURE_PID)
        return RunOutcome(observed=frozenset(occurred), failed=failed)


def generate_app(seed: int, spec: Optional[SyntheticSpec] = None) -> SyntheticApp:
    """Generate one synthetic application.

    The construction guarantees (and tests assert) that:

    * the AC-DAG contains the true causal path as a chain;
    * every noise predicate's parent precedes it in the AC-DAG;
    * the number of causal predicates is in ``[1, max(1, N/log2 N)]``.
    """
    spec = spec or SyntheticSpec()
    spec.validate()
    rng = random.Random(seed)
    n_threads = rng.randint(spec.min_threads, spec.max_threads)
    n_phases = rng.randint(*spec.phases)

    # Layout: runs[phase][i] = list of pids, in within-thread order.
    runs: list[list[list[str]]] = []
    for phase in range(n_phases):
        active = rng.randint(1, min(n_threads, spec.max_active))
        phase_runs: list[list[str]] = []
        for thread in range(active):
            length = rng.randint(*spec.run_length)
            phase_runs.append(
                [f"P{phase}.{thread}.{k}" for k in range(length)]
            )
        runs.append(phase_runs)

    all_pids = [pid for phase in runs for run in phase for pid in run]
    n = len(all_pids)

    # Transitively-closed AC-DAG: same-run order + all cross-phase pairs.
    graph = nx.DiGraph()
    graph.add_nodes_from(all_pids + [FAILURE_PID])
    for phase_runs in runs:
        for run in phase_runs:
            for i, a in enumerate(run):
                for b in run[i + 1 :]:
                    graph.add_edge(a, b)
    for i, earlier in enumerate(runs):
        for later in runs[i + 1 :]:
            for run_a in earlier:
                for run_b in later:
                    for a in run_a:
                        for b in run_b:
                            graph.add_edge(a, b)
    for pid in all_pids:
        graph.add_edge(pid, FAILURE_PID)

    # True causal path: a *contiguous* band of phases starting at a
    # random position.  Real causal chains are temporally local — the
    # root cause fires and the failure follows through a tight cascade
    # (every case study in Section 7.1 has this shape) — which is
    # exactly why topologically-ordered groups are often pure noise and
    # can be discarded wholesale (the paper's first Figure 8
    # observation).  One run per phase contributes a prefix.
    d_max = max(1, int(n / math.log2(n))) if n > 2 else 1
    d_target = rng.randint(1, d_max)
    start_phase = rng.randrange(n_phases)
    causal: list[str] = []
    remaining = d_target
    for p_idx in range(start_phase, n_phases):  # forward from the start
        if remaining <= 0:
            break
        run = runs[p_idx][rng.randrange(len(runs[p_idx]))]
        take = min(len(run), remaining)
        causal.extend(run[:take])
        remaining -= take
    for p_idx in range(start_phase - 1, -1, -1):  # extend backward if short
        if remaining <= 0:
            break
        run = runs[p_idx][rng.randrange(len(runs[p_idx]))]
        take = min(len(run), remaining)
        causal = run[:take] + causal
        remaining -= take

    # Noise parents: heads attach to the root or an earlier causal
    # predicate; within a run, noise chains to its predecessor.
    causal_set = set(causal)
    parents: dict[str, Optional[str]] = {}
    for p_idx, phase_runs in enumerate(runs):
        earlier_causal = [
            pid
            for pid in causal
            if int(pid.split(".")[0][1:]) < p_idx
        ]
        for run in phase_runs:
            previous: Optional[str] = None
            for pid in run:
                if pid in causal_set:
                    previous = pid
                    continue
                if previous is not None:
                    parents[pid] = previous
                elif earlier_causal and rng.random() < 0.5:
                    parents[pid] = rng.choice(earlier_causal)
                else:
                    parents[pid] = None  # root noise: always occurs
                previous = pid

    dag = ACDag(graph=graph, failure=FAILURE_PID)
    return SyntheticApp(
        dag=dag,
        causal_path=causal,
        parents=parents,
        n_threads=n_threads,
        seed=seed,
    )


def generate_batch(
    n_apps: int, seed: int, spec: Optional[SyntheticSpec] = None
) -> list[SyntheticApp]:
    """Generate a batch of apps with derived (stable) per-app seeds."""
    return [generate_app(seed * 100_003 + i, spec) for i in range(n_apps)]


def spec_for_maxt(max_threads: int) -> SyntheticSpec:
    """The Figure 8 sweep parameterization for one MAXt setting."""
    return SyntheticSpec(max_threads=max_threads)
