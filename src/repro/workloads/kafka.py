"""Case study 2: Kafka consumer use-after-free (confluent-kafka-dotnet #279).

The real bug: the main thread creates a Kafka consumer and starts a
child thread that polls and then commits.  When the child runs too slow
(here: it drew an oversized batch), the main thread disposes the
consumer before the child's ``Commit`` — which then operates on a
disposed object and crashes (or hangs) the application.

Ground-truth causal path (5 predicates, as in Figure 7):

    exec[HandleLargeBatch] → order[Dispose ≺ Commit violated]
    → slow[PollMessages] → wrongret[CheckLiveness]
    → fails(ObjectDisposed)[Commit] → F

(The order-violation predicate anchors at Dispose's start and therefore
precedes the slow predicate, which anchors when the slow poll *ends* —
temporal precedence over-approximates causality, exactly as Section 4
warns.)

This workload also reproduces the paper's observation that 30 of the 72
discriminative predicates had *no temporal path to the failure* and were
discarded at AC-DAG construction: after the child crashes, the main
thread joins it and runs a long post-mortem cleanup cascade whose
predicates all anchor strictly after F.
"""

from __future__ import annotations

from ..sim.errors import SimulatedError
from ..sim.program import Program
from .common import REGISTRY, PaperRow, Workload, add_diag_worker

#: Small batches poll quickly; the oversized batch stalls the child far
#: past the dispose point.  The dichotomy is discrete, so every derived
#: predicate is crisply discriminative.
LARGE_BATCH_TICKS = 200
SMALL_BATCH_TICKS = 30
#: Main-thread housekeeping before disposing the consumer.
HOUSEKEEPING_TICKS = 90
HOUSEKEEPING_JITTER = 20
#: Probability of drawing an oversized batch (the intermittency source).
LARGE_BATCH_PROBABILITY = 0.30

#: Post-crash cleanup steps run by the main thread; every second one
#: throws (and is caught) for predicate variety.  20 methods → 20
#: "executes" + 10 method-fails predicates = the 30 post-failure
#: predicates the AC-DAG discards.
CLEANUP_STEPS = 20


def _app_main(ctx):
    yield from ctx.call("CreateConsumer")
    large = ctx.rand() < LARGE_BATCH_PROBABILITY
    ctx.poke("batch_large", large)
    yield from ctx.spawn("consumer", "ConsumerLoop")
    yield from ctx.call("DoHousekeeping")
    yield from ctx.call("DisposeConsumer")
    yield from ctx.join("consumer")
    if ctx.peek("consumer_crashed"):
        for i in range(CLEANUP_STEPS):
            try:
                yield from ctx.call(f"CleanupStep{i:02d}")
            except SimulatedError:
                pass
    return "done"


def _create_consumer(ctx):
    yield from ctx.write("consumer_state", "live")
    return "consumer"


def _do_housekeeping(ctx):
    yield from ctx.work(HOUSEKEEPING_TICKS + ctx.randint(0, HOUSEKEEPING_JITTER))
    return None


def _dispose_consumer(ctx):
    """The premature dispose — the victimizing half of the bug."""
    yield from ctx.work(2)
    yield from ctx.write("consumer_state", "disposed")
    return None


def _consumer_loop(ctx):
    yield from ctx.call("PollMessages")
    yield from ctx.call("Commit")
    return "consumed"


def _poll_messages(ctx):
    """Polls one batch; an oversized batch stalls far too long (the bug)."""
    if ctx.peek("batch_large"):
        yield from ctx.call("HandleLargeBatch")
    else:
        yield from ctx.work(SMALL_BATCH_TICKS)
    return "polled"


def _handle_large_batch(ctx):
    yield from ctx.work(LARGE_BATCH_TICKS)
    return "handled"


def _check_liveness(ctx):
    state = yield from ctx.read("consumer_state")
    yield from ctx.work(1)
    return state == "live"


def _commit(ctx):
    """Commits offsets; crashes when the consumer is already disposed."""
    alive = yield from ctx.call("CheckLiveness")
    if not alive:
        # Doomed: the consumer is gone.  Symptoms and diagnostics fire,
        # then the ObjectDisposed exception takes the process down.
        yield from ctx.call("GetCommitStatus", False)
        yield from ctx.call("ValidateOffsets", False)
        yield from ctx.call("EnterShutdownPath")
        yield from ctx.call("LogDisposedAccess")
        yield from ctx.call("SnapshotAssignments")
        yield from ctx.spawn("diagA", "DiagBrokerWorker")
        yield from ctx.spawn("diagB", "DiagOffsetWorker")
        yield from ctx.spawn("diagC", "DiagMemberWorker")
        yield from ctx.join("diagA")
        yield from ctx.join("diagB")
        yield from ctx.join("diagC")
        ctx.poke("consumer_crashed", True)
        ctx.throw("ObjectDisposed", "commit on disposed consumer")
    yield from ctx.call("GetCommitStatus", True)
    yield from ctx.call("ValidateOffsets", True)
    return "committed"


def _get_commit_status(ctx, ok):
    yield from ctx.work(2)
    return "clean" if ok else "dirty"


def _validate_offsets(ctx, ok):
    yield from ctx.work(3 if ok else 60)
    return "validated"


def _enter_shutdown_path(ctx):
    yield from ctx.work(2)
    return None


def _log_disposed_access(ctx):
    yield from ctx.work(2)
    return None


def _snapshot_assignments(ctx):
    yield from ctx.work(2)
    return ()


def build() -> Workload:
    methods = {
        "AppMain": _app_main,
        "CreateConsumer": _create_consumer,
        "DoHousekeeping": _do_housekeeping,
        "DisposeConsumer": _dispose_consumer,
        "ConsumerLoop": _consumer_loop,
        "PollMessages": _poll_messages,
        "HandleLargeBatch": _handle_large_batch,
        "CheckLiveness": _check_liveness,
        "Commit": _commit,
        "GetCommitStatus": _get_commit_status,
        "ValidateOffsets": _validate_offsets,
        "EnterShutdownPath": _enter_shutdown_path,
        "LogDisposedAccess": _log_disposed_access,
        "SnapshotAssignments": _snapshot_assignments,
    }
    for i in range(CLEANUP_STEPS):
        name = f"CleanupStep{i:02d}"

        def step(ctx, _throws=(i % 2 == 0)):
            yield from ctx.work(2)
            if _throws:
                ctx.throw("CleanupError", "post-mortem cleanup hiccup")
            return None

        methods[name] = step

    diag_probes = {
        "DiagBrokerWorker": [
            ("ProbeBrokerConn", None),
            ("ProbeBrokerMeta", "ProbeError"),
            ("ProbeBrokerAcks", None),
            ("ProbeBrokerQueue", None),
            ("ProbeBrokerTls", "ProbeError"),
            ("ProbeBrokerStats", None),
            ("ProbeBrokerApi", None),
            ("ProbeBrokerLag", None),
        ],
        "DiagOffsetWorker": [
            ("ProbeOffsetStore", None),
            ("ProbeOffsetWatermark", "ProbeError"),
            ("ProbeOffsetCommitQ", None),
            ("ProbeOffsetLeader", None),
            ("ProbeOffsetEpoch", "ProbeError"),
            ("ProbeOffsetRetention", None),
            ("ProbeOffsetLog", None),
            ("ProbeOffsetIndex", None),
        ],
        "DiagMemberWorker": [
            ("ProbeMemberList", None),
            ("ProbeMemberHeartbeat", "ProbeError"),
            ("ProbeMemberRebalance", None),
            ("ProbeMemberSession", None),
            ("ProbeMemberProtocol", "ProbeError"),
            ("ProbeMemberLeader", None),
            ("ProbeMemberGen", None),
        ],
    }
    for worker, probes in diag_probes.items():
        add_diag_worker(methods, worker, probes)

    readonly = frozenset(
        name
        for name in methods
        if name.startswith(("Probe", "Diag", "Cleanup", "Check", "Get"))
    ) | frozenset(
        {
            "PollMessages",
            "HandleLargeBatch",
            "Commit",
            "ValidateOffsets",
            "EnterShutdownPath",
            "LogDisposedAccess",
            "SnapshotAssignments",
        }
    )
    program = Program(
        name="kafka-279",
        methods=methods,
        main="AppMain",
        shared={"consumer_state": "none"},
        readonly_methods=readonly,
        description="Kafka consumer use-after-free (issue #279 model)",
    )
    return Workload(
        name="kafka",
        program=program,
        paper=PaperRow(
            github_issue="confluentinc/confluent-kafka-dotnet#279",
            sd_predicates=72,
            causal_path_len=5,
            aid_interventions=17,
            tagt_interventions=33,
        ),
        expected_path_markers=(
            "exec[consumer:HandleLargeBatch#0]",
            "slow[consumer:PollMessages#0]",
            "order[main:DisposeConsumer#0<",
            "wrongret[consumer:CheckLiveness#0]",
            "fails(ObjectDisposed)[consumer:Commit#0]",
        ),
        root_marker="exec[consumer:HandleLargeBatch#0]",
        description="use-after-free: consumer disposed while child commits",
    )


REGISTRY.register("kafka")(build)
