"""Case study 1: the Npgsql connection-pool data race (GitHub #2485).

The real bug (paper Example 1 and Figure 9): ``TryGetValue`` reads the
pool-index variable ``_nextSlot`` without synchronization while
``GetOrAdd`` — inside its own lock, which ``TryGetValue`` does not take —
updates it.  Under the racing interleaving ``TryGetValue`` observes a
transiently-invalid index, indexes beyond the pool array, and the
resulting ``IndexOutOfRange`` exception crashes the application.

Model mapping (see DESIGN.md substitutions):

* ``GetOrAdd`` runs a two-write update protocol on ``_nextSlot``
  (sentinel −1 while rebuilding, then the restored count) — reading
  *inside* the protocol is exactly the paper's "access beyond the array
  size".  The interleaved-access race detector fires precisely on that
  window, so the race predicate is fully discriminative.
* The doomed ``TryGetValue`` path exhibits the deterministic cascade:
  ``LookupSlot`` returns −1 (wrong value), status/validation symptoms
  fire, two diagnostic threads run their probes, and the crash follows.

Ground-truth causal path (3 predicates, as in Figure 7):

    race(_nextSlot) → wrongret[LookupSlot] → fails(IndexOutOfRange) → F
"""

from __future__ import annotations

from ..sim.program import Program
from .common import REGISTRY, PaperRow, Workload, add_diag_worker

#: GetOrAdd's rebuild takes this long; it is the race window.
REBUILD_TICKS = 12
#: Per-seed jitter bounds controlling how often the window is hit.
MAIN_JITTER = 40
OPENER_JITTER = 80
#: Doomed-path validation stall; far above any successful duration.
DEGRADED_VALIDATE_TICKS = 100


def _pool_main(ctx):
    """Main thread: concurrently add a pool while a connection opens."""
    yield from ctx.spawn("opener", "OpenConnection")
    yield from ctx.work(ctx.randint(0, MAIN_JITTER))
    yield from ctx.call("GetOrAdd", "db")
    yield from ctx.join("opener")
    return "done"


def _get_or_add(ctx, key):
    """Rebuild the pool table; ``_nextSlot`` is briefly invalid (the bug).

    The real GetOrAdd is lock-protected, but TryGetValue does not take
    the lock — so the protocol is exposed exactly as if unprotected.
    """
    count = ctx.peek("_nextSlot")
    yield from ctx.write("_nextSlot", -1)  # sentinel: table being rebuilt
    yield from ctx.work(REBUILD_TICKS)  # copy/resize the pool array
    yield from ctx.write("_nextSlot", count)  # restore the (same) count
    return "pool"


def _open_connection(ctx):
    conn = yield from ctx.call("TryGetValue", "db")
    return conn


def _try_get_value(ctx, key):
    """The racing reader; crashes when it sees the rebuild sentinel."""
    yield from ctx.call("RefreshStats")
    slot = yield from ctx.read("_nextSlot")  # unsynchronized read (bug)
    idx = yield from ctx.call("LookupSlot", slot)
    degraded = idx < 0
    yield from ctx.call("GetPoolStatus", degraded)
    yield from ctx.call("ValidatePool", degraded)
    if degraded:
        # Doomed: fire diagnostics, then crash like the real bug.
        yield from ctx.spawn("diag1", "DiagConnWorker")
        yield from ctx.spawn("diag2", "DiagPoolWorker")
        yield from ctx.join("diag1")
        yield from ctx.join("diag2")
        ctx.throw("IndexOutOfRange", f"slot {slot} beyond pool array size")
    return f"conn-{idx}"


def _refresh_stats(ctx):
    """Per-seed startup jitter (connection hand-shake variance)."""
    yield from ctx.work(ctx.randint(0, OPENER_JITTER))
    return None


def _lookup_slot(ctx, slot):
    """Maps the observed index to a pool slot; −1 when invalid."""
    yield from ctx.work(2)
    return slot if slot >= 0 else -1


def _get_pool_status(ctx, degraded):
    yield from ctx.work(2)
    return "degraded" if degraded else "ok"


def _validate_pool(ctx, degraded):
    """Pool validation walks retry/backoff logic when degraded."""
    yield from ctx.work(DEGRADED_VALIDATE_TICKS if degraded else 3)
    return "validated"


def build() -> Workload:
    methods = {
        "PoolMain": _pool_main,
        "GetOrAdd": _get_or_add,
        "OpenConnection": _open_connection,
        "TryGetValue": _try_get_value,
        "RefreshStats": _refresh_stats,
        "LookupSlot": _lookup_slot,
        "GetPoolStatus": _get_pool_status,
        "ValidatePool": _validate_pool,
    }
    add_diag_worker(
        methods,
        "DiagConnWorker",
        probes=[
            ("ProbeConnCount", None),
            ("ProbeSocketState", "ProbeError"),
            ("ProbeTlsSession", None),
        ],
    )
    add_diag_worker(
        methods,
        "DiagPoolWorker",
        probes=[
            ("ProbePoolIndex", None),
            ("ProbeArrayBounds", "ProbeError"),
        ],
    )
    readonly = frozenset(
        {
            "TryGetValue",
            "LookupSlot",
            "GetPoolStatus",
            "ValidatePool",
            "RefreshStats",
            "DiagConnWorker",
            "DiagPoolWorker",
            "ProbeConnCount",
            "ProbeSocketState",
            "ProbeTlsSession",
            "ProbePoolIndex",
            "ProbeArrayBounds",
        }
    )
    program = Program(
        name="npgsql-2485",
        methods=methods,
        main="PoolMain",
        shared={"_nextSlot": 1},
        readonly_methods=readonly,
        description=__doc__.strip().splitlines()[0],
    )
    return Workload(
        name="npgsql",
        program=program,
        paper=PaperRow(
            github_issue="npgsql/npgsql#2485",
            sd_predicates=14,
            causal_path_len=3,
            aid_interventions=5,
            tagt_interventions=11,
        ),
        expected_path_markers=(
            "race(_nextSlot)",
            "wrongret[opener:LookupSlot#0]",
            "fails(IndexOutOfRange)",
        ),
        root_marker="race(_nextSlot)",
        description="data race on a pool index variable crashes connection open",
    )


REGISTRY.register("npgsql")(build)
