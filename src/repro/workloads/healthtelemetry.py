"""Case study 6: "HealthTelemetry" — runtime-health reporting module.

The paper reports a Microsoft-internal telemetry module used by many
services; its intermittent failure was a *race condition*, the largest
of the six studies (93 discriminative predicates, a 10-predicate causal
path, AID 40 vs. TAGT 70 interventions).

Model: a collector thread periodically flushes the telemetry buffer via
a two-write protocol (``flushing`` → ``ready``); a reporter thread
appends a record, reading the buffer state without synchronization.
When the read lands inside the flush window, the reporter enters a long
degraded pipeline — every stage counterfactually gating — that ends in
a buffer-corruption crash while publishing the health report.

Ground-truth causal path (10 predicates):

    race(buffer_state) → wrongret[CheckBufferState]
    → exec[EnterDegradedMode] → wrongret[GetWriteCursor]
    → exec[RequeueBatch] → slow[DrainQueue] → wrongret[ValidateBatch]
    → exec[EscalateError] → fails(BufferCorruption)[CommitBatch]
    → fails(BufferCorruption)[PublishReport] → F
"""

from __future__ import annotations

from ..sim.program import Program
from .common import REGISTRY, PaperRow, Workload, add_diag_worker

#: The flush window (two writes this far apart) — the race window.
FLUSH_TICKS = 15
#: Start jitters controlling how often the reader lands in the window.
COLLECTOR_JITTER = 60
REPORTER_JITTER = 90
#: Degraded-path drain stall vs. the normal drain.  The normal drain is
#: deliberately much longer than worst-case cross-thread interleave
#: noise (~10 ticks), so the too-slow threshold learned from successful
#: runs is never straddled by an intervened replay.
DRAIN_DEGRADED_TICKS = 160
DRAIN_NORMAL_TICKS = 40
#: The append deadline that the degraded drain blows through: the
#: pre-drain pipeline plus a normal (or skipped) drain stays well under
#: it; the degraded drain lands far beyond.
APPEND_DEADLINE_TICKS = 120


def _telemetry_main(ctx):
    yield from ctx.write("buffer_state", "ready")
    yield from ctx.spawn("collector", "CollectorLoop")
    yield from ctx.spawn("reporter", "ReporterLoop")
    yield from ctx.join("collector")
    yield from ctx.join("reporter")
    return "telemetry-done"


def _collector_loop(ctx):
    yield from ctx.work(ctx.randint(0, COLLECTOR_JITTER))
    yield from ctx.call("FlushBuffer")
    return "collected"


def _flush_buffer(ctx):
    """The two-write flush protocol — exposed to unsynchronized readers."""
    yield from ctx.write("buffer_state", "flushing")
    yield from ctx.work(FLUSH_TICKS)
    yield from ctx.write("buffer_state", "ready")
    return "flushed"


def _reporter_loop(ctx):
    yield from ctx.work(ctx.randint(0, REPORTER_JITTER))
    yield from ctx.call("AppendRecord")
    return "reported"


def _append_record(ctx):
    """Appends one health record; the unsynchronized read is the bug."""
    ctx.poke("append_start", ctx.now())
    state = yield from ctx.read("buffer_state")  # racing read
    status = yield from ctx.call("CheckBufferState", state)
    if status == "ready":
        return (yield from ctx.call("NormalAppend"))
    yield from ctx.call("EnterDegradedMode")
    if not ctx.peek("degraded"):
        return (yield from ctx.call("NormalAppend"))
    cursor = yield from ctx.call("GetWriteCursor", True)
    if cursor >= 0:
        return (yield from ctx.call("NormalAppend"))
    yield from ctx.call("RequeueBatch")
    if not ctx.peek("requeued"):
        return (yield from ctx.call("NormalAppend"))
    yield from ctx.call("DrainQueue", True)
    if ctx.now() - ctx.peek("append_start") <= APPEND_DEADLINE_TICKS:
        return (yield from ctx.call("NormalAppend"))
    verdict = yield from ctx.call("ValidateBatch", True)
    if verdict == "valid":
        return (yield from ctx.call("NormalAppend"))
    yield from ctx.call("EscalateError")
    if not ctx.peek("escalated"):
        return (yield from ctx.call("NormalAppend"))
    # Beyond recovery: symptoms, diagnostics, then the crash.
    yield from ctx.call("GetBufferStats", True)
    yield from ctx.call("RefreshMetrics", True)
    yield from ctx.call("GetQueueDepth", True)
    yield from ctx.call("MarkUnhealthy")
    yield from ctx.call("FreezeIngestion")
    for tag, worker in (
        ("diagQ", "DiagQueueWorker"),
        ("diagW", "DiagWriterWorker"),
        ("diagS", "DiagScrubWorker"),
        ("diagU", "DiagUploadWorker"),
        ("diagH", "DiagHostWorker"),
        ("diagM", "DiagMetricWorker"),
    ):
        yield from ctx.spawn(tag, worker)
    for tag in ("diagQ", "diagW", "diagS", "diagU", "diagH", "diagM"):
        yield from ctx.join(tag)
    return (yield from ctx.call("PublishReport", True))


def _normal_append(ctx):
    """The healthy append pipeline (same stages, good outcomes)."""
    yield from ctx.call("GetWriteCursor", False)
    yield from ctx.call("DrainQueue", False)
    yield from ctx.call("ValidateBatch", False)
    yield from ctx.call("GetBufferStats", False)
    yield from ctx.call("RefreshMetrics", False)
    yield from ctx.call("GetQueueDepth", False)
    return (yield from ctx.call("PublishReport", False))


def _check_buffer_state(ctx, state):
    yield from ctx.work(2)
    return "ready" if state == "ready" else "busy"


def _enter_degraded_mode(ctx):
    yield from ctx.work(2)
    ctx.poke("degraded", True)
    return None


def _get_write_cursor(ctx, degraded):
    yield from ctx.work(2)
    return -1 if degraded else 0


def _requeue_batch(ctx):
    yield from ctx.work(3)
    ctx.poke("requeued", True)
    return None


def _drain_queue(ctx, degraded):
    yield from ctx.work(DRAIN_DEGRADED_TICKS if degraded else DRAIN_NORMAL_TICKS)
    return "drained"


def _validate_batch(ctx, degraded):
    yield from ctx.work(3)
    return "corrupt" if degraded else "valid"


def _escalate_error(ctx):
    yield from ctx.work(2)
    ctx.poke("escalated", True)
    return None


def _get_buffer_stats(ctx, degraded):
    yield from ctx.work(2)
    return "overrun" if degraded else "nominal"


def _refresh_metrics(ctx, degraded):
    yield from ctx.work(70 if degraded else 3)
    return "refreshed"


def _get_queue_depth(ctx, degraded):
    yield from ctx.work(2)
    return 512 if degraded else 0


def _mark_unhealthy(ctx):
    yield from ctx.work(2)
    return None


def _freeze_ingestion(ctx):
    yield from ctx.work(2)
    return None


def _publish_report(ctx, degraded):
    result = yield from ctx.call("CommitBatch", degraded)
    return result


def _commit_batch(ctx, degraded):
    yield from ctx.work(3)
    if degraded:
        ctx.throw("BufferCorruption", "health batch committed over a live flush")
    return "committed"


def build() -> Workload:
    methods = {
        "TelemetryMain": _telemetry_main,
        "CollectorLoop": _collector_loop,
        "FlushBuffer": _flush_buffer,
        "ReporterLoop": _reporter_loop,
        "AppendRecord": _append_record,
        "NormalAppend": _normal_append,
        "CheckBufferState": _check_buffer_state,
        "EnterDegradedMode": _enter_degraded_mode,
        "GetWriteCursor": _get_write_cursor,
        "RequeueBatch": _requeue_batch,
        "DrainQueue": _drain_queue,
        "ValidateBatch": _validate_batch,
        "EscalateError": _escalate_error,
        "GetBufferStats": _get_buffer_stats,
        "RefreshMetrics": _refresh_metrics,
        "GetQueueDepth": _get_queue_depth,
        "MarkUnhealthy": _mark_unhealthy,
        "FreezeIngestion": _freeze_ingestion,
        "PublishReport": _publish_report,
        "CommitBatch": _commit_batch,
    }
    diag_families = {
        "DiagQueueWorker": "Queue",
        "DiagWriterWorker": "Writer",
        "DiagScrubWorker": "Scrub",
        "DiagUploadWorker": "Upload",
        "DiagHostWorker": "Host",
        "DiagMetricWorker": "Metric",
    }
    topics = [
        "Depth", "Heads", "Tails", "Locks", "Pages", "Stamps",
        "Index", "Crc", "Quota",
    ]
    for worker, family in diag_families.items():
        probes = [
            (
                f"Probe{family}{topic}",
                "ProbeError" if i % 3 == 1 else None,
            )
            for i, topic in enumerate(topics)
        ]
        add_diag_worker(methods, worker, probes)

    readonly = frozenset(
        name
        for name in methods
        if name.startswith(("Probe", "Diag", "Check", "Get"))
    ) | frozenset(
        {
            # AppendRecord mutates the telemetry buffer, so it is NOT
            # read-only: its method-fails predicate is unsafe to
            # intervene and drops out (PublishReport carries the
            # failure-side causality instead).
            "NormalAppend",
            "EnterDegradedMode",
            "RequeueBatch",
            "DrainQueue",
            "ValidateBatch",
            "EscalateError",
            "RefreshMetrics",
            "MarkUnhealthy",
            "FreezeIngestion",
            "PublishReport",
            "CommitBatch",
        }
    )
    program = Program(
        name="healthtelemetry",
        methods=methods,
        main="TelemetryMain",
        shared={"buffer_state": "init"},
        readonly_methods=readonly,
        description="telemetry buffer race with a deep degraded pipeline",
    )
    return Workload(
        name="healthtelemetry",
        program=program,
        paper=PaperRow(
            github_issue="(proprietary)",
            sd_predicates=93,
            causal_path_len=10,
            aid_interventions=40,
            tagt_interventions=70,
        ),
        expected_path_markers=(
            "race(buffer_state)",
            "wrongret[reporter:CheckBufferState#0]",
            "exec[reporter:EnterDegradedMode#0]",
            "wrongret[reporter:GetWriteCursor#0]",
            "exec[reporter:RequeueBatch#0]",
            "slow[reporter:DrainQueue#0]",
            "wrongret[reporter:ValidateBatch#0]",
            "exec[reporter:EscalateError#0]",
            "fails(BufferCorruption)[reporter:CommitBatch#0]",
            "fails(BufferCorruption)[reporter:PublishReport#0]",
        ),
        root_marker="race(buffer_state)",
        description="buffer race drives a ten-stage degraded pipeline to a crash",
    )


REGISTRY.register("healthtelemetry")(build)
