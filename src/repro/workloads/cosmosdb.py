"""Case study 3: Azure Cosmos DB cache-expiry timing bug (PR #713).

The real bug: the application populates a cache whose entries expire
after one second, performs a few tasks, and then reads a cached entry.
Normally the tasks finish well inside the expiry window; when a
transient fault triggers the expensive fault-handling path, the task
overruns the window, the entry has already expired, and the application
fails on the miss.

Ground-truth causal path (7 predicates, as in Figure 7):

    fails(TransientFault)[SendRequest] → exec[HandleFault]
    → slow[ProcessTask#1] → slow[RunTasks] → wrongret[CacheLookup]
    → fails(KeyNotFound)[UseEntry] → fails(KeyNotFound)[FinishOrder] → F

Every hop is counterfactually gating: catching the transient fault,
skipping the fault handler, fast-forwarding either slow task wrapper,
repairing the lookup, or catching either downstream exception all
prevent the failure.
"""

from __future__ import annotations

from ..sim.errors import SimulatedError
from ..sim.program import Program
from .common import REGISTRY, PaperRow, Workload, add_diag_worker

#: Cache entries expire this long after PopulateCache (the "1 second").
#: Comfortably above the worst-case healthy run (~230 ticks) and far
#: below any run that walked the 400-tick fault handler.
CACHE_EXPIRY_TICKS = 300
#: Normal per-task cost, with mild per-seed jitter.
TASK_TICKS = 40
TASK_JITTER = 25
#: The expensive fault-handling path (retries, backoff) — far beyond
#: the expiry window on its own.
FAULT_HANDLING_TICKS = 400
#: Probability that the request hits a transient fault (intermittency).
TRANSIENT_FAULT_PROBABILITY = 0.25


def _app_main(ctx):
    yield from ctx.call("PopulateCache")
    yield from ctx.call("RunTasks")
    yield from ctx.call("FinishOrder")
    return "done"


def _populate_cache(ctx):
    yield from ctx.work(3)
    yield from ctx.write("cache_filled_at", ctx.now())
    return "populated"


def _run_tasks(ctx):
    for i in range(3):
        yield from ctx.call("ProcessTask", i)
    return "tasks-done"


def _process_task(ctx, index):
    yield from ctx.work(TASK_TICKS + ctx.randint(0, TASK_JITTER))
    if index == 1:
        # The middle task performs the backend request that may hit a
        # transient fault.
        try:
            yield from ctx.call("SendRequest")
            yield from ctx.call("ProcessResponse")
        except SimulatedError:
            yield from ctx.call("HandleFault")
    return f"task-{index}"


def _send_request(ctx):
    yield from ctx.work(5)
    if ctx.rand() < TRANSIENT_FAULT_PROBABILITY:
        ctx.throw("TransientFault", "backend hiccup")
    return "sent"


def _process_response(ctx):
    """Successful-path response processing.

    This step exists on the success branch only, which keeps the
    too-slow threshold of ``ProcessTask#1`` well above its duration when
    the fault handler is skipped by an intervention — the predicate
    stays crisp under every intervention combination.
    """
    yield from ctx.work(30)
    return "processed"


def _handle_fault(ctx):
    """Expensive fault handling: retries with backoff (the time sink)."""
    yield from ctx.work(FAULT_HANDLING_TICKS)
    yield from ctx.spawn("diagT", "DiagTelemetryWorker")
    yield from ctx.spawn("diagR", "DiagRetryWorker")
    yield from ctx.spawn("diagC", "DiagClientWorker")
    yield from ctx.spawn("diagK", "DiagCacheWorker")
    yield from ctx.spawn("diagS", "DiagSnapshotWorker")
    yield from ctx.join("diagT")
    yield from ctx.join("diagR")
    yield from ctx.join("diagC")
    yield from ctx.join("diagK")
    yield from ctx.join("diagS")
    return "handled"


def _finish_order(ctx):
    entry = yield from ctx.call("CacheLookup")
    yield from ctx.call("UseEntry", entry)
    return "finished"


def _cache_lookup(ctx):
    filled_at = yield from ctx.read("cache_filled_at")
    yield from ctx.work(2)
    if ctx.now() - filled_at > CACHE_EXPIRY_TICKS:
        return None  # entry expired
    return "order-entry"


def _use_entry(ctx, entry):
    yield from ctx.work(2)
    if entry is None:
        yield from ctx.call("GetCacheStats", True)
        yield from ctx.call("ValidateOrderState", True)
        ctx.throw("KeyNotFound", "cached order entry expired")
    yield from ctx.call("GetCacheStats", False)
    yield from ctx.call("ValidateOrderState", False)
    return "used"


def _get_cache_stats(ctx, missed):
    yield from ctx.work(2)
    return "miss" if missed else "hit"


def _validate_order_state(ctx, missed):
    yield from ctx.work(70 if missed else 3)
    return "validated"


def build() -> Workload:
    methods = {
        "AppMain": _app_main,
        "PopulateCache": _populate_cache,
        "RunTasks": _run_tasks,
        "ProcessTask": _process_task,
        "SendRequest": _send_request,
        "ProcessResponse": _process_response,
        "HandleFault": _handle_fault,
        "FinishOrder": _finish_order,
        "CacheLookup": _cache_lookup,
        "UseEntry": _use_entry,
        "GetCacheStats": _get_cache_stats,
        "ValidateOrderState": _validate_order_state,
    }
    diag_probes = {
        "DiagTelemetryWorker": [
            ("ProbeLatencyHist", None),
            ("ProbeRequestUnits", "ProbeError"),
            ("ProbePartitionMap", None),
            ("ProbeThrottleState", None),
            ("ProbeRegionHealth", "ProbeError"),
            ("ProbeSdkCounters", None),
            ("ProbeGatewayPing", None),
        ],
        "DiagRetryWorker": [
            ("ProbeRetryBudget", None),
            ("ProbeBackoffCurve", "ProbeError"),
            ("ProbeIdempotency", None),
            ("ProbeCircuitState", None),
            ("ProbeTimeoutConfig", "ProbeError"),
            ("ProbeRetryQueue", None),
            ("ProbeFailurePoint", None),
        ],
        "DiagClientWorker": [
            ("ProbeConnMode", None),
            ("ProbeSessionToken", "ProbeError"),
            ("ProbeConsistency", None),
            ("ProbeEndpointCache", None),
            ("ProbeClientVersion", "ProbeError"),
            ("ProbeAuthScope", None),
        ],
        "DiagCacheWorker": [
            ("ProbeCacheSize", None),
            ("ProbeCacheTtl", "ProbeError"),
            ("ProbeCacheHitRate", None),
            ("ProbeCacheEviction", None),
            ("ProbeCacheShards", "ProbeError"),
            ("ProbeCacheKeys", None),
            ("ProbeCacheMemory", "ProbeError"),
            ("ProbeCacheClock", None),
            ("ProbeCacheWarmup", "ProbeError"),
        ],
        "DiagSnapshotWorker": [
            ("ProbeSnapshotLsn", None),
            ("ProbeSnapshotAge", "ProbeError"),
            ("ProbeSnapshotDiff", None),
            ("ProbeSnapshotRoot", None),
            ("ProbeSnapshotRefs", "ProbeError"),
            ("ProbeSnapshotLag", None),
            ("ProbeSnapshotPins", None),
            ("ProbeSnapshotMeta", "ProbeError"),
        ],
    }
    for worker, probes in diag_probes.items():
        add_diag_worker(methods, worker, probes)

    readonly = frozenset(
        name
        for name in methods
        if name.startswith(("Probe", "Diag", "Get", "Check"))
    ) | frozenset(
        {
            "SendRequest",
            "ProcessResponse",
            "HandleFault",
            "ProcessTask",
            "RunTasks",
            "CacheLookup",
            "UseEntry",
            "FinishOrder",
            "ValidateOrderState",
        }
    )
    program = Program(
        name="cosmosdb-713",
        methods=methods,
        main="AppMain",
        shared={"cache_filled_at": 0},
        readonly_methods=readonly,
        description="Cosmos DB cache-expiry timing bug (PR #713 model)",
    )
    return Workload(
        name="cosmosdb",
        program=program,
        paper=PaperRow(
            github_issue="Azure/azure-cosmos-dotnet-v3#713",
            sd_predicates=64,
            causal_path_len=7,
            aid_interventions=15,
            tagt_interventions=42,
        ),
        expected_path_markers=(
            "fails(TransientFault)[main:SendRequest#0]",
            "exec[main:HandleFault#0]",
            "slow[main:ProcessTask#1]",
            "slow[main:RunTasks#0]",
            "wrongret[main:CacheLookup#0]",
            "fails(KeyNotFound)[main:UseEntry#0]",
            "fails(KeyNotFound)[main:FinishOrder#0]",
        ),
        root_marker="fails(TransientFault)[main:SendRequest#0]",
        description="transient fault → expensive handling → cache expiry → crash",
    )


REGISTRY.register("cosmosdb")(build)
