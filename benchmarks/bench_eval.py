"""Old-vs-new suite evaluation and discovery: the evalkernel, measured.

What the tentpole promises, timed on the npgsql and kafka workloads:

* **Suite evaluation** — "old" replays the pre-kernel data path through
  a :class:`LegacyTraceView` (linear-scan ``lookup``, a fresh sort per
  ``method_executions`` call) with the per-predicate evaluation loop;
  "new" is ``suite.evaluate_all`` through the cached trace index and the
  key-grouped :class:`~repro.core.evalkernel.SuiteKernel`.  The logs are
  asserted observation-identical before any timing is reported.
* **Discovery** — "old" is single-phase extractor discovery over legacy
  views with the seed's all-pairs ordered-pairs walk
  (:class:`LegacyOrderViolationExtractor`); "new" is two-phase
  propose/calibrate, serial and fanned over an 8-job engine.  Suites
  are asserted fingerprint-identical across all three.

The result lands in ``BENCH_eval.json`` (committed at the repo root and
uploaded by the CI ``perf-smoke`` job)::

    {
      "workloads": {"npgsql": {"suite_eval": {...}, "discovery": {...}}, ...},
      "largest_workload": "kafka",
      "suite_eval_speedup_largest": ...,
      "cpu_count": ...,
    }

On a single-core runner the parallel-discovery number is honestly ~1x
(``cpu_count`` is recorded so readers can tell); the suite-evaluation
speedup is algorithmic — index + kernel vs rescans — and holds on any
core count.

Run:  PYTHONPATH=src python benchmarks/bench_eval.py
Env:  REPRO_FULL=1 for paper-scale trace counts,
      REPRO_BENCH_JOBS / REPRO_BENCH_ROUNDS to override defaults.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import time
from pathlib import Path
from typing import Optional

from repro.core.extraction import (
    DataRaceExtractor,
    DurationExtractor,
    FailureExtractor,
    MethodExecutedExtractor,
    MethodFailsExtractor,
    OrderViolationExtractor,
    PredicateSuite,
    WrongReturnExtractor,
)
from repro.exec import ExecutionEngine, make_backend
from repro.harness.runner import collect
from repro.sim.tracing import MethodExecution, MethodKey
from repro.workloads.common import REGISTRY

WORKLOADS = ("npgsql", "kafka")
N_PER_LABEL = 512 if os.environ.get("REPRO_FULL") else 128
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "8"))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))


class LegacyTraceView:
    """The seed's trace-reading contract, for an honest "old" baseline.

    Wraps a trace but answers ``lookup`` by linear scan over the call
    list and ``method_executions`` with a fresh sort per call — exactly
    the pre-index behaviour the kernel retired.
    """

    def __init__(self, trace) -> None:
        self._calls = trace.method_executions()
        self.program_name = trace.program_name
        self.seed = trace.seed
        self.failure = trace.failure
        self.failed = trace.failed

    def method_executions(self) -> list[MethodExecution]:
        return sorted(self._calls, key=lambda m: (m.start_time, m.call_id))

    def executions_of(self, method: str):
        return (m for m in self.method_executions() if m.method == method)

    def lookup(self, key: MethodKey) -> Optional[MethodExecution]:
        for m in self._calls:
            if m.key == key:
                return m
        return None

    def accesses(self):
        for m in self.method_executions():
            yield from m.accesses


class LegacyOrderViolationExtractor(OrderViolationExtractor):
    """The seed's O(keys²)-per-trace ordered-pairs materialization.

    A subclass (so it is *not* in ``TWO_PHASE_EXTRACTORS``) that
    restores the all-pairs comparison walk the sort-based sweep
    replaced — the discovery baseline to beat.
    """

    def discover(self, successes, failures):
        if not successes:
            return []
        ordered = None
        for trace in successes:
            execs = {m.key: m for m in trace.method_executions()}
            pairs = set()
            keys = sorted(execs)
            for first in keys:
                for second in keys:
                    if first == second:
                        continue
                    mf, ms = execs[first], execs[second]
                    if mf.thread == ms.thread:
                        continue
                    if mf.end_time <= ms.start_time:
                        pairs.add((first, second))
            ordered = pairs if ordered is None else (ordered & pairs)
        violated = []
        for first, second in sorted(ordered or ()):
            for trace in failures:
                mf, ms = trace.lookup(first), trace.lookup(second)
                if mf and ms and ms.start_time < mf.end_time:
                    violated.append((first, second))
                    break
        latest_end: dict[MethodKey, float] = {}
        earliest_start: dict[MethodKey, float] = {}
        for trace in successes:
            for m in trace.method_executions():
                latest_end[m.key] = max(latest_end.get(m.key, 0), m.end_time)
                earliest_start[m.key] = min(
                    earliest_start.get(m.key, float("inf")), m.start_time
                )
        return self._canonicalize(violated, latest_end, earliest_start)


def _legacy_extractors():
    return [
        DataRaceExtractor(),
        MethodFailsExtractor(),
        DurationExtractor(),
        WrongReturnExtractor(),
        LegacyOrderViolationExtractor(),
        MethodExecutedExtractor(),
        FailureExtractor(),
    ]


def _best(fn, rounds: int = ROUNDS) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _evaluate_legacy(suite, views):
    logs = []
    for view in views:
        observations = {}
        for pid, pred in suite.defs.items():
            obs = pred.evaluate(view)
            if obs is not None:
                observations[pid] = obs
        logs.append(observations)
    return logs


def bench_workload(name: str, engine: ExecutionEngine) -> dict:
    program = REGISTRY.build(name).program
    corpus = collect(program, n_success=N_PER_LABEL, n_fail=N_PER_LABEL)
    corpus = corpus.restrict_failures(corpus.dominant_failure_signature())
    traces = corpus.successes + corpus.failures
    succ_views = [LegacyTraceView(t) for t in corpus.successes]
    fail_views = [LegacyTraceView(t) for t in corpus.failures]
    views = succ_views + fail_views
    n_calls = sum(len(t.method_executions()) for t in traces)

    # -- discovery: old single-phase vs new two-phase (serial and fanned)
    old_disc_s, old_suite = _best(
        lambda: PredicateSuite.discover(
            succ_views,
            fail_views,
            extractors=_legacy_extractors(),
            program=program,
            two_phase=False,
        )
    )
    new_disc_s, new_suite = _best(
        lambda: PredicateSuite.discover(
            corpus.successes, corpus.failures, program=program
        )
    )
    par_disc_s, par_suite = _best(
        lambda: PredicateSuite.discover(
            corpus.successes, corpus.failures, program=program, engine=engine
        )
    )
    assert old_suite.fingerprint == new_suite.fingerprint == par_suite.fingerprint, (
        f"{name}: discovery paths disagree"
    )

    # -- suite evaluation: per-predicate over legacy views vs the kernel
    old_eval_s, old_logs = _best(lambda: _evaluate_legacy(new_suite, views))
    new_eval_s, new_logs = _best(lambda: new_suite.evaluate_all(traces))
    assert [dict(log.observations) for log in new_logs] == old_logs, (
        f"{name}: evaluation paths disagree"
    )

    return {
        "traces": len(traces),
        "calls": n_calls,
        "suite_predicates": len(new_suite),
        "suite_eval": {
            "old_seconds": old_eval_s,
            "new_seconds": new_eval_s,
            "speedup": old_eval_s / new_eval_s,
        },
        "discovery": {
            "old_seconds": old_disc_s,
            "new_serial_seconds": new_disc_s,
            "speedup": old_disc_s / new_disc_s,
            "jobs8_seconds": par_disc_s,
            "parallel_speedup": new_disc_s / par_disc_s,
        },
        "results_identical": True,
    }


def main() -> int:
    backend_name = (
        "process"
        if "fork" in multiprocessing.get_all_start_methods()
        else "thread"
    )
    engine = ExecutionEngine(backend=make_backend(backend_name, JOBS))
    try:
        workloads = {name: bench_workload(name, engine) for name in WORKLOADS}
    finally:
        engine.close()

    largest = max(workloads, key=lambda name: workloads[name]["calls"])
    payload = {
        "workloads": workloads,
        "largest_workload": largest,
        "suite_eval_speedup_largest": workloads[largest]["suite_eval"]["speedup"],
        "traces_per_label": N_PER_LABEL,
        "rounds": ROUNDS,
        "jobs": JOBS,
        "backend": backend_name,
        "cpu_count": os.cpu_count(),
    }
    out = Path("BENCH_eval.json")
    out.write_text(json.dumps(payload, indent=2, sort_keys=True))

    for name, result in workloads.items():
        se, disc = result["suite_eval"], result["discovery"]
        print(
            f"{name}: {result['traces']} traces, {result['calls']} calls, "
            f"{result['suite_predicates']} predicates"
        )
        print(
            f"  suite eval : old {se['old_seconds']:.3f}s -> "
            f"new {se['new_seconds']:.3f}s  ({se['speedup']:.2f}x)"
        )
        print(
            f"  discovery  : old {disc['old_seconds']:.3f}s -> "
            f"new {disc['new_serial_seconds']:.3f}s "
            f"({disc['speedup']:.2f}x), "
            f"{JOBS} jobs {disc['jobs8_seconds']:.3f}s "
            f"({disc['parallel_speedup']:.2f}x vs serial "
            f"on {os.cpu_count()} CPU(s))"
        )
    print(
        f"largest workload {largest!r}: suite-eval speedup "
        f"{payload['suite_eval_speedup_largest']:.2f}x"
    )
    print(f"wrote {out.resolve()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
