"""API front-door overhead: ``repro.run(spec)`` vs a direct session.

The declarative layer must be free: ``repro.run`` builds the same
session the legacy entry point builds, so the only added cost is spec
validation, engine construction, and event plumbing.  This benchmark
times both paths on an identical configuration, asserts the reports
are **byte-identical** under the versioned JSON schema, and records
the overhead ratio (expected ≈1.0x).

The result lands in ``BENCH_api.json``::

    {
      "legacy":   {"mean_seconds": ..., "best_seconds": ...},
      "api":      {"mean_seconds": ..., "best_seconds": ...},
      "overhead": <api best / legacy best>,
      "reports_identical": true,
      "report_schema": 1,
      "report": { ... the versioned report payload ... }
    }

Run:  PYTHONPATH=src python benchmarks/bench_api.py
Env:  REPRO_BENCH_WORKLOAD / REPRO_BENCH_RUNS / REPRO_BENCH_ROUNDS
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import CollectionSpec, RunSpec, WorkloadSpec, run  # noqa: E402
from repro.core.report import (  # noqa: E402
    REPORT_SCHEMA_VERSION,
    validate_report_dict,
)
from repro.harness.session import AIDSession, SessionConfig  # noqa: E402
from repro.workloads.common import REGISTRY  # noqa: E402

WORKLOAD = os.environ.get("REPRO_BENCH_WORKLOAD", "network")
RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "25"))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))


def main() -> int:
    program = REGISTRY.build(WORKLOAD).program
    spec = RunSpec(
        workload=WorkloadSpec(WORKLOAD),
        collection=CollectionSpec(n_success=RUNS, n_fail=RUNS),
    )

    legacy_timings, api_timings = [], []
    legacy_payload = api_payload = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        legacy_report = AIDSession(
            program, SessionConfig(n_success=RUNS, n_fail=RUNS)
        ).run("AID")
        legacy_timings.append(time.perf_counter() - started)
        legacy_payload = legacy_report.to_dict()

        started = time.perf_counter()
        api_report = run(RunSpec.from_dict(spec.to_dict()))
        api_timings.append(time.perf_counter() - started)
        api_payload = api_report.to_dict()

    identical = json.dumps(legacy_payload, sort_keys=True) == json.dumps(
        api_payload, sort_keys=True
    )
    assert identical, "api front door diverged from the legacy session"
    problems = validate_report_dict(api_payload)
    assert not problems, f"report violates the schema: {problems}"

    def summary(timings: list[float]) -> dict:
        return {
            "rounds": len(timings),
            "mean_seconds": sum(timings) / len(timings),
            "best_seconds": min(timings),
        }

    legacy, api = summary(legacy_timings), summary(api_timings)
    payload = {
        "workload": WORKLOAD,
        "runs_per_label": RUNS,
        "legacy": legacy,
        "api": api,
        "overhead": api["best_seconds"] / legacy["best_seconds"],
        "reports_identical": identical,
        "report_schema": REPORT_SCHEMA_VERSION,
        "report": api_payload,
    }
    out = Path("BENCH_api.json")
    out.write_text(json.dumps(payload, indent=2, sort_keys=True))

    print(
        f"{WORKLOAD!r} ({RUNS}+{RUNS} traces), {ROUNDS} round(s): "
        f"legacy best {legacy['best_seconds']:.3f}s, "
        f"api best {api['best_seconds']:.3f}s "
        f"({payload['overhead']:.2f}x; reports byte-identical: {identical})"
    )
    print(f"wrote {out.resolve()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
