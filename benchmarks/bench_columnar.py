"""Columnar shard sweeps vs the indexed object path, measured.

What the columnar tentpole promises, timed on the npgsql and kafka
workloads over a corpus store built in a temp directory:

* **Table build** — one-time cost of encoding every shard's traces
  into its ``columnar.bin`` side car (amortized across analyses; the
  store rebuilds only when the shard's content digest moves).
* **Suite evaluation** — "indexed" is ``evaluate_fingerprints`` with
  ``columnar=False``: per-trace ``EvalMatrix.log_for`` through the
  :class:`SuiteKernel` key-index path.  "columnar" is the same call
  with ``columnar=True``: one ``kernel.sweep`` per shard over the
  mmap-backed :class:`ShardTable`.  Every round starts from a fresh
  (cold) matrix so nothing is memoized; the logs and counters are
  asserted identical between the two paths — and across an 8-job
  engine — before any timing is reported.

The headline number uses a single-bucket store (``shard_width=0``):
a sweep's advantage scales with rows per shard, and at bench-scale
trace counts the default width-2 sharding leaves ~1.5 traces per
shard, where per-shard fixed costs (shared by both paths) drown the
kernel.  Both paths run against the *same* store either way, and the
default-width measurement is reported next to the headline as
``sharded_suite_eval`` so the fan-out cost stays visible.

The result lands in ``BENCH_columnar.json`` (committed at the repo
root and uploaded by the CI ``perf-smoke`` job)::

    {
      "workloads": {"npgsql": {...}, "kafka": {...}},
      "largest_workload": "kafka",
      "suite_eval_speedup_largest": ...,
      "cpu_count": ...,
    }

The speedup is algorithmic — whole-column passes over interned int64
arrays vs object-graph walks — and holds on any core count; the 8-job
number is honestly ~1x on a single-core runner (``cpu_count`` is
recorded so readers can tell).

Run:  PYTHONPATH=src python benchmarks/bench_columnar.py
Env:  REPRO_FULL=1 for paper-scale trace counts,
      REPRO_BENCH_JOBS / REPRO_BENCH_ROUNDS to override defaults.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.core.extraction import PredicateSuite
from repro.corpus.store import TraceStore
from repro.exec import ExecutionEngine, make_backend
from repro.harness.runner import collect
from repro.sim.serialize import trace_to_dict
from repro.workloads.common import REGISTRY

WORKLOADS = ("npgsql", "kafka")
N_PER_LABEL = 512 if os.environ.get("REPRO_FULL") else 128
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "8"))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))


def _best(fn, rounds: int = ROUNDS) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _snapshot(evaluations):
    """Everything the two paths must agree on, comparison-ready."""
    return (
        [
            [
                (fp, log.failed, dict(log.observations))
                for fp, log in ev.logs
            ]
            for ev in evaluations
        ],
        [
            (
                ev.matrix.pair_evaluations,
                ev.matrix.pair_hits,
                ev.matrix.kernel_calls,
            )
            for ev in evaluations
        ],
        [ev.counters.counts for ev in evaluations],
    )


def _measure(store, suite, fingerprints, engine):
    """Cold indexed-vs-columnar timings over one store, identity-checked."""

    def run(columnar, engine=None):
        matrix = store.eval_matrix()
        return _snapshot(
            matrix.evaluate_fingerprints(
                suite,
                fingerprints,
                engine=engine,
                return_logs=True,
                columnar=columnar,
            )
        )

    indexed_s, indexed = _best(lambda: run(columnar=False))
    columnar_s, columnar = _best(lambda: run(columnar=True))
    jobs_s, jobs = _best(lambda: run(columnar=True, engine=engine))
    assert indexed == columnar == jobs, "evaluation paths disagree"
    return {
        "indexed_seconds": indexed_s,
        "columnar_seconds": columnar_s,
        "speedup": indexed_s / columnar_s,
        "jobs8_seconds": jobs_s,
        "parallel_speedup": columnar_s / jobs_s,
    }


def bench_workload(name: str, root: Path, engine: ExecutionEngine) -> dict:
    program = REGISTRY.build(name).program
    corpus = collect(program, n_success=N_PER_LABEL, n_fail=N_PER_LABEL)
    corpus = corpus.restrict_failures(corpus.dominant_failure_signature())
    traces = corpus.successes + corpus.failures
    stores = {}
    fingerprints = []
    for label, width in (("bucket", 0), ("sharded", 2)):
        store = TraceStore.init(
            root / label, program=program.name, shard_width=width
        )
        fingerprints = [
            store.ingest_payload(trace_to_dict(t))[0] for t in traces
        ]
        store.save()
        stores[label] = store
    suite = PredicateSuite.discover(
        corpus.successes, corpus.failures, program=program
    )

    # -- one-time columnar build, then confirm every shard got a table
    bucket, sharded = stores["bucket"], stores["sharded"]
    build_started = time.perf_counter()
    tables = [bucket.columnar_table(sid) for sid in bucket.shard_ids]
    build_s = time.perf_counter() - build_started
    assert all(t is not None for t in tables), f"{name}: shard unsupported"
    for sid in sharded.shard_ids:
        assert sharded.columnar_table(sid) is not None
    n_calls = sum(t.n_calls for t in tables)

    suite_eval = _measure(bucket, suite, fingerprints, engine)
    sharded_eval = _measure(sharded, suite, fingerprints, engine)

    return {
        "traces": len(traces),
        "calls": n_calls,
        "shards_sharded": len(sharded.shard_ids),
        "suite_predicates": len(suite),
        "columnar_predicates": len(suite.columnar_pids()),
        "table_build_seconds": build_s,
        "table_bytes": sum(
            bucket.columnar_path(sid).stat().st_size
            for sid in bucket.shard_ids
        ),
        "suite_eval": suite_eval,
        "sharded_suite_eval": sharded_eval,
        "results_identical": True,
    }


def main() -> int:
    backend_name = (
        "process"
        if "fork" in multiprocessing.get_all_start_methods()
        else "thread"
    )
    engine = ExecutionEngine(backend=make_backend(backend_name, JOBS))
    try:
        with tempfile.TemporaryDirectory() as tmp:
            workloads = {
                name: bench_workload(name, Path(tmp) / name, engine)
                for name in WORKLOADS
            }
    finally:
        engine.close()

    largest = max(workloads, key=lambda name: workloads[name]["calls"])
    payload = {
        "workloads": workloads,
        "largest_workload": largest,
        "suite_eval_speedup_largest": workloads[largest]["suite_eval"][
            "speedup"
        ],
        "traces_per_label": N_PER_LABEL,
        "rounds": ROUNDS,
        "jobs": JOBS,
        "backend": backend_name,
        "cpu_count": os.cpu_count(),
    }
    out = Path("BENCH_columnar.json")
    out.write_text(json.dumps(payload, indent=2, sort_keys=True))

    for name, result in workloads.items():
        se, sh = result["suite_eval"], result["sharded_suite_eval"]
        print(
            f"{name}: {result['traces']} traces, {result['calls']} calls, "
            f"{result['suite_predicates']} predicates "
            f"({result['columnar_predicates']} columnar)"
        )
        print(
            f"  table build: {result['table_build_seconds']:.3f}s "
            f"({result['table_bytes']:,} bytes)"
        )
        print(
            f"  suite eval : indexed {se['indexed_seconds']:.3f}s -> "
            f"columnar {se['columnar_seconds']:.3f}s "
            f"({se['speedup']:.2f}x); {JOBS} jobs "
            f"{se['jobs8_seconds']:.3f}s "
            f"({se['parallel_speedup']:.2f}x vs serial "
            f"on {os.cpu_count()} CPU(s))"
        )
        print(
            f"  width-2    : indexed {sh['indexed_seconds']:.3f}s -> "
            f"columnar {sh['columnar_seconds']:.3f}s "
            f"({sh['speedup']:.2f}x over "
            f"{result['shards_sharded']} thin shards)"
        )
    print(
        f"largest workload {largest!r}: columnar speedup "
        f"{payload['suite_eval_speedup_largest']:.2f}x"
    )
    print(f"wrote {out.resolve()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
