"""Corpus throughput: cold ingest+analyze vs. warm re-analysis.

What the tentpole promises, measured:

* **cold** — starting from an empty directory, ingest a labeled trace
  set (content-addressed writes) and bootstrap the analysis pipeline
  (every (predicate, trace) pair evaluated fresh);
* **warm** — reopen the same corpus from disk and bootstrap again: all
  evaluation answered from the persisted bitset matrix, zero fresh
  predicate evaluations.

Besides the pytest-benchmark timings (run with ``-s`` for tables), the
module writes ``BENCH_corpus.json`` to the working directory with mean
timings, throughput (traces/s), and the cold/warm speedup.

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_corpus.py -q -s
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.corpus import IncrementalPipeline, TraceStore
from repro.harness.runner import collect
from repro.workloads.common import REGISTRY

WORKLOAD = "network"
N_PER_LABEL = 15

_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def traces():
    program = REGISTRY.build(WORKLOAD).program
    corpus = collect(program, n_success=N_PER_LABEL, n_fail=N_PER_LABEL)
    return program, corpus.successes + corpus.failures


@pytest.fixture(scope="module")
def warm_corpus(traces, tmp_path_factory):
    """A fully-ingested, fully-analyzed corpus directory."""
    program, all_traces = traces
    root = tmp_path_factory.mktemp("warm") / "corpus"
    store = TraceStore.init(root, program=program.name)
    for trace in all_traces:
        store.ingest(trace)
    pipeline = IncrementalPipeline(store, program=program)
    pipeline.bootstrap()
    pipeline.save()
    return program, root, len(all_traces)


def _record(name: str, benchmark, n_traces: int) -> None:
    mean = benchmark.stats.stats.mean
    _RESULTS[name] = {
        "mean_seconds": mean,
        "rounds": benchmark.stats.stats.rounds,
        "traces": n_traces,
        "traces_per_second": n_traces / mean if mean else None,
    }


def _write_summary() -> None:
    cold = _RESULTS.get("cold_ingest")
    warm = _RESULTS.get("warm_reanalysis")
    payload = {
        "workload": WORKLOAD,
        "traces_per_label": N_PER_LABEL,
        "cold_ingest": cold,
        "warm_reanalysis": warm,
    }
    if cold and warm and warm["mean_seconds"]:
        payload["cold_over_warm_speedup"] = (
            cold["mean_seconds"] / warm["mean_seconds"]
        )
    out = Path("BENCH_corpus.json")
    out.write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {out.resolve()}")


def test_cold_ingest_and_analyze(benchmark, traces, tmp_path):
    """Empty dir -> ingest everything -> bootstrap (all pairs fresh)."""
    program, all_traces = traces

    counter = iter(range(1_000_000))

    def run():
        root = tmp_path / f"cold-{next(counter)}"
        store = TraceStore.init(root, program=program.name)
        for trace in all_traces:
            store.ingest(trace)
        pipeline = IncrementalPipeline(store, program=program)
        pipeline.bootstrap()
        pipeline.save()
        assert pipeline.matrix.pair_evaluations > 0
        shutil.rmtree(root)
        return pipeline

    benchmark.pedantic(run, rounds=3, iterations=1)
    _record("cold_ingest", benchmark, len(all_traces))
    _write_summary()


def test_warm_reanalysis(benchmark, warm_corpus):
    """Reopen from disk -> bootstrap: zero fresh evaluations."""
    program, root, n_traces = warm_corpus

    def run():
        pipeline = IncrementalPipeline(
            TraceStore.open(root), program=program
        )
        pipeline.bootstrap()
        assert pipeline.matrix.pair_evaluations == 0
        return pipeline

    benchmark.pedantic(run, rounds=3, iterations=1)
    _record("warm_reanalysis", benchmark, n_traces)
    _write_summary()
