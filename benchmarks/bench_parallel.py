"""The intervention-execution engine: parallel backends and memoization.

Figure8-style sweeps through the engine, measuring what the tentpole
promises:

* **backend scaling** — the same simulator-backed intervention rounds at
  ``--jobs`` 1 / 2 / 4 (serial vs fork-based process pool).  Speedups
  are bounded by round sizes (early stop keeps rounds short) and fork
  overhead, so the assertion is parity of results, with timings printed
  for inspection;
* **cold vs. warm cache** — a sweep repeated against a shared
  :class:`~repro.exec.engine.ExecutionEngine` must answer the second
  pass entirely from the outcome cache: zero new executions.

Run with ``-s`` to see the stats reports inline.
"""

from __future__ import annotations

import random

import pytest

from repro.core.discovery import causal_path_discovery
from repro.core.intervention import SimulationRunner
from repro.core.variants import Approach, discover
from repro.exec import ExecutionEngine, ProcessPoolBackend, SerialBackend
from repro.harness.experiments import figure8
from repro.workloads.synthetic import generate_app, spec_for_maxt

from .conftest import shared_session

JOB_COUNTS = (1, 2, 4)


def _engine(jobs: int) -> ExecutionEngine:
    backend = SerialBackend() if jobs == 1 else ProcessPoolBackend(jobs)
    return ExecutionEngine(backend)


def _discover_with(session, engine):
    base = session.make_runner()
    runner = SimulationRunner(
        simulator=base.simulator,
        suite=base.suite,
        failure_pid=base.failure_pid,
        seeds=base.seeds,
        engine=engine,
    )
    return causal_path_discovery(
        session.build_dag(), runner, rng=random.Random(0)
    )


@pytest.mark.parametrize("jobs", JOB_COUNTS)
def test_simulated_interventions_at_jobs(benchmark, jobs):
    """One case study's intervention phase at --jobs 1/2/4."""
    session = shared_session("kafka")
    session.build_dag()
    baseline = _discover_with(session, ExecutionEngine())

    def run():
        engine = _engine(jobs)
        try:
            return engine, _discover_with(session, engine)
        finally:
            engine.close()

    benchmark.group = "parallel-jobs"
    engine, result = benchmark(run)
    assert result.causal_path == baseline.causal_path
    assert result.budget.history == baseline.budget.history
    print()
    print(engine.stats.report(f"kafka interventions, jobs={jobs}"))


@pytest.mark.parametrize("jobs", JOB_COUNTS)
def test_figure8_sweep_at_jobs(benchmark, jobs):
    """A small figure8-style oracle sweep routed through each backend."""
    maxt = 18
    apps = [
        generate_app(5_000_000 + maxt * 131 + i, spec_for_maxt(maxt))
        for i in range(6)
    ]

    def sweep():
        engine = _engine(jobs)
        try:
            return [
                discover(
                    Approach.AID,
                    app.dag,
                    app.runner(engine=engine),
                    rng=random.Random(i),
                )
                for i, app in enumerate(apps)
            ]
        finally:
            engine.close()

    benchmark.group = "parallel-figure8"
    results = benchmark(sweep)
    for app, result in zip(apps, results):
        assert set(result.causal_path) - {"F"} == set(app.causal_path)


def test_cold_vs_warm_cache(benchmark):
    """The memoization payoff: a warm repeat executes zero interventions."""
    engine = ExecutionEngine()
    cold = figure8(maxt_values=(2, 18), apps_per_setting=10, engine=engine)
    executed_cold = engine.stats.executed
    assert executed_cold > 0

    def warm_sweep():
        return figure8(maxt_values=(2, 18), apps_per_setting=10, engine=engine)

    benchmark.group = "warm-cache"
    warm = benchmark(warm_sweep)
    assert engine.stats.executed == executed_cold, "warm sweep re-executed"
    assert warm.all_exact == cold.all_exact
    for key, cell in warm.cells.items():
        assert cell.rounds[: len(cold.cells[key].rounds)] == cold.cells[key].rounds
    print()
    print(engine.stats.report("figure8 cold+warm"))
