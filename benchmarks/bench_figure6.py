"""Figure 6 + Example 3 — the theory tables (experiments E7-E8).

Regenerates the symmetric-AC-DAG comparison of search spaces and
intervention bounds, validates Lemma 1 against brute force, and checks
the bound orderings the paper derives.
"""

from __future__ import annotations

import pytest

from repro.core.theory import (
    count_cpd_solutions,
    cpd_lower_bound,
    figure6_table,
    gt_lower_bound,
    gt_search_space,
    symmetric_acdag,
    symmetric_search_space,
)
from repro.harness.experiments import example3_report, figure6_report

SETTINGS = [
    # (J, B, n, D, S1, S2)
    (1, 2, 3, 2, 1, 1),
    (2, 3, 2, 3, 2, 2),
    (3, 4, 3, 4, 2, 2),
    (4, 8, 4, 8, 3, 3),
]


@pytest.mark.parametrize("setting", SETTINGS, ids=lambda s: f"J{s[0]}B{s[1]}n{s[2]}")
def test_fig6_row(benchmark, setting):
    junctions, branches, n, d, s1, s2 = setting
    benchmark.group = "figure6"
    rows = benchmark(lambda: figure6_table(junctions, branches, n, d, s1, s2))
    cpd, gt = rows
    assert cpd.search_space <= gt.search_space
    assert cpd.lower_bound <= gt.lower_bound
    assert cpd.upper_bound <= gt.upper_bound


def test_fig6_tables_print(benchmark):
    benchmark.group = "figure6"
    reports = benchmark(
        lambda: [figure6_report(*setting) for setting in SETTINGS]
    )
    print()
    for report in reports:
        print(report)
        print()


def test_example3(benchmark):
    """Paper Example 3: GT searches 64 candidates, CPD only 15."""
    import networkx as nx

    graph = nx.DiGraph()
    nx.add_path(graph, ["A1", "B1", "C1"])
    nx.add_path(graph, ["A2", "B2", "C2"])
    benchmark.group = "figure6"
    cpd = benchmark(lambda: count_cpd_solutions(graph))
    assert cpd == 15
    assert gt_search_space(6) == 64
    print()
    print(example3_report())


def test_lemma1_brute_force_agreement(benchmark):
    def check():
        results = []
        for j, b, n in [(1, 2, 2), (2, 2, 2), (1, 3, 2), (2, 3, 1)]:
            graph = symmetric_acdag(j, b, n)
            results.append(
                count_cpd_solutions(graph) == symmetric_search_space(j, b, n)
            )
        return results

    benchmark.group = "figure6"
    assert all(benchmark(check))


def test_theorem2_reduction_series(benchmark):
    """The CPD lower bound falls below GT's and shrinks as S1 grows."""
    n, d = 284, 20
    benchmark.group = "figure6"
    series = benchmark(
        lambda: [cpd_lower_bound(n, d, s1) for s1 in (1, 2, 4, 8)]
    )
    assert all(x < gt_lower_bound(n, d) for x in series)
    assert series == sorted(series, reverse=True)
