"""Schedule-exploration strategies vs the random baseline, measured.

What the exploration tentpole promises, quantified on every registered
workload: systematic strategies (PCT priority scheduling, delay-bounded
scheduling) discover *more distinct failing interleavings* than naive
random scheduling at the same execution budget.  Each cell runs the
full coverage-guided driver (:class:`repro.explore.ExplorationDriver`)
for ``BUDGET`` executions under one base strategy and counts distinct
failing schedule signatures — the deduplication key the corpus uses —
plus coverage edges and total distinct interleavings.  Every discovered
failure is replay-verified (byte-identical trace digest) before it is
counted; a run with an unverified replay fails the bench.

The headline assertion — enforced here and relied on by the CI
``explore-smoke`` job — is that on at least ``MIN_WINS`` workloads some
systematic variant strictly beats random at equal budget.  Everything
is seeded (strategies, driver mutation, signatures), so the table and
the assertion are deterministic for a given budget.

The result lands in ``BENCH_explore.json`` (committed at the repo root
and uploaded by CI)::

    {
      "workloads": {"npgsql": {"random": {...}, "pct_d5": {...}, ...}},
      "wins": {"npgsql": "pct_d10", ...},
      "superiority_count": ...,
      "budget": ..., "cpu_count": ...,
    }

Run:  PYTHONPATH=src python benchmarks/bench_explore.py
Env:  REPRO_EXPLORE_BUDGET to override the per-cell budget (the
      superiority assertion is calibrated at the default).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.explore import ExploreConfig, explore
from repro.workloads.common import REGISTRY

BUDGET = int(os.environ.get("REPRO_EXPLORE_BUDGET", "80"))
MIN_WINS = 2

# One random baseline, three systematic contenders.  The variants are
# fixed here — per-workload parameter tuning would make "beats random"
# a self-fulfilling prophecy.
VARIANTS = (
    ("random", "random", {}),
    ("pct_d3", "pct", {"depth": 3}),
    ("pct_d5", "pct", {"depth": 5}),
    ("pct_d10", "pct", {"depth": 10}),
    ("delay_k2", "delay", {"delays": 2}),
)


def bench_cell(program, strategy: str, params: dict) -> dict:
    started = time.perf_counter()
    result = explore(
        program,
        ExploreConfig(budget=BUDGET, strategy=strategy, strategy_params=params),
    )
    elapsed = time.perf_counter() - started
    assert result.all_replays_verified, (
        f"{program.name}/{strategy}: a discovered failure did not "
        f"replay byte-identically"
    )
    return {
        "distinct_failing_signatures": result.distinct_failing_signatures,
        "distinct_signatures": result.distinct_signatures,
        "coverage_edges": result.coverage_edges,
        "executions": result.executions,
        "n_failed": result.n_failed,
        "failures_replay_verified": True,
        "seconds": elapsed,
    }


def main() -> int:
    workloads: dict[str, dict] = {}
    for name in REGISTRY.names():
        program = REGISTRY.build(name).program
        workloads[name] = {
            label: bench_cell(program, strategy, params)
            for label, strategy, params in VARIANTS
        }

    wins: dict[str, str] = {}
    for name, cells in workloads.items():
        baseline = cells["random"]["distinct_failing_signatures"]
        best_label, best = max(
            (
                (label, cells[label]["distinct_failing_signatures"])
                for label, _, _ in VARIANTS
                if label != "random"
            ),
            key=lambda item: item[1],
        )
        if best > baseline:
            wins[name] = best_label

    payload = {
        "workloads": workloads,
        "wins": wins,
        "superiority_count": len(wins),
        "min_wins": MIN_WINS,
        "budget": BUDGET,
        "variants": [
            {"label": label, "strategy": strategy, "params": params}
            for label, strategy, params in VARIANTS
        ],
        "cpu_count": os.cpu_count(),
    }
    out = Path("BENCH_explore.json")
    out.write_text(json.dumps(payload, indent=2, sort_keys=True))

    header = f"{'workload':16s}" + "".join(
        f"{label:>10s}" for label, _, _ in VARIANTS
    )
    print(header)
    for name, cells in workloads.items():
        row = f"{name:16s}" + "".join(
            f"{cells[label]['distinct_failing_signatures']:>10d}"
            for label, _, _ in VARIANTS
        )
        marker = f"  <- {wins[name]} beats random" if name in wins else ""
        print(row + marker)
    print(
        f"systematic strategies beat random on {len(wins)}/"
        f"{len(workloads)} workloads at budget {BUDGET} "
        f"(floor {MIN_WINS}, cpu_count {os.cpu_count()})"
    )
    print(f"wrote {out.resolve()}")

    assert len(wins) >= MIN_WINS, (
        f"expected pct or delay to strictly beat random on at least "
        f"{MIN_WINS} workloads, got {len(wins)}: {wins}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
