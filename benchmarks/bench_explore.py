"""Schedule-exploration strategies, wave parallelism, and pruning, measured.

Three claims of the exploration tentpoles, quantified on every
registered workload:

1. **Systematic strategies beat random** (the original exploration
   bench): PCT priority scheduling and delay-bounded scheduling find
   *more distinct failing interleavings* than naive random scheduling
   at the same execution budget.  Enforced: some systematic variant
   strictly beats random on at least ``MIN_WINS`` workloads.
2. **Waves parallelize without changing results**: the same budget is
   re-run through the wave dispatcher at ``--jobs`` 1/2/4 (thread
   backend), recording wall-clock executions/sec per (strategy, jobs)
   cell.  Enforced: the result payload is byte-identical across job
   counts — parallelism is a pure throughput knob.
3. **Partial-order pruning cuts redundancy**: at equal budget, runs
   with Mazurkiewicz-class pruning on vs off are compared by
   *redundant executions per distinct canonical interleaving*
   (``pruned_equivalent / distinct_canonical``).  Enforced (the perf
   acceptance gate): either ≥2x executions/sec at ``--jobs 4`` (only
   expected on multi-core hosts — ``cpu_count`` is recorded so the
   number reads honestly) or a ≥20% aggregate redundancy reduction
   from pruning.

Every discovered failure is replay-verified (byte-identical trace
digest) before it is counted; a run with an unverified replay fails
the bench.  Everything is seeded, so the tables and assertions are
deterministic for a given budget.

The result lands in ``BENCH_explore.json`` (committed at the repo root
and uploaded by CI)::

    {
      "workloads": {"npgsql": {"random": {...}, "pct_d5": {...}, ...}},
      "wins": {"npgsql": "pct_d10", ...},
      "superiority_count": ...,
      "parallel": {"cells": [{"strategy": ..., "jobs": ...,
                              "executions_per_sec": ...}, ...],
                   "payload_identical_across_jobs": true,
                   "speedup_jobs4": ...},
      "pruning": {"cells": [...], "aggregate": {...}},
      "budget": ..., "cpu_count": ...,
    }

Run:  PYTHONPATH=src python benchmarks/bench_explore.py
Env:  REPRO_EXPLORE_BUDGET to override the per-cell budget (the
      superiority and pruning assertions are calibrated at the default).
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

from repro.explore import ExploreConfig, explore
from repro.workloads.common import REGISTRY

BUDGET = int(os.environ.get("REPRO_EXPLORE_BUDGET", "80"))
MIN_WINS = 2
#: acceptance floor: aggregate reduction in redundant executions per
#: distinct canonical interleaving from partial-order pruning
MIN_PRUNING_REDUCTION = 0.20
#: acceptance floor for the multi-core alternative: wave throughput at
#: --jobs 4 over --jobs 1
MIN_SPEEDUP_JOBS4 = 2.0

# One random baseline, three systematic contenders.  The variants are
# fixed here — per-workload parameter tuning would make "beats random"
# a self-fulfilling prophecy.
VARIANTS = (
    ("random", "random", {}),
    ("pct_d3", "pct", {"depth": 3}),
    ("pct_d5", "pct", {"depth": 5}),
    ("pct_d10", "pct", {"depth": 10}),
    ("delay_k2", "delay", {"delays": 2}),
)

#: (strategy label, jobs) grid for the wave-throughput table
PARALLEL_STRATEGIES = ("random", "pct_d3")
PARALLEL_JOBS = (1, 2, 4)

#: strategies compared for the pruning on/off redundancy table
PRUNING_STRATEGIES = ("random", "pct_d3")


def _variant(label: str) -> tuple[str, dict]:
    for name, strategy, params in VARIANTS:
        if name == label:
            return strategy, params
    raise KeyError(label)


def bench_cell(program, strategy: str, params: dict) -> dict:
    started = time.perf_counter()
    result = explore(
        program,
        ExploreConfig(budget=BUDGET, strategy=strategy, strategy_params=params),
    )
    elapsed = time.perf_counter() - started
    assert result.all_replays_verified, (
        f"{program.name}/{strategy}: a discovered failure did not "
        f"replay byte-identically"
    )
    return {
        "distinct_failing_signatures": result.distinct_failing_signatures,
        "distinct_signatures": result.distinct_signatures,
        "distinct_canonical": result.distinct_canonical,
        "pruned_equivalent": result.pruned_equivalent,
        "coverage_edges": result.coverage_edges,
        "executions": result.executions,
        "n_failed": result.n_failed,
        "failures_replay_verified": True,
        "seconds": elapsed,
    }


def bench_parallel(programs) -> dict:
    """Wave throughput per (strategy, jobs), plus the identity check."""
    cells = []
    identical = True
    for label in PARALLEL_STRATEGIES:
        strategy, params = _variant(label)
        for jobs in PARALLEL_JOBS:
            started = time.perf_counter()
            payloads = []
            executions = 0
            for program in programs:
                result = explore(
                    program,
                    ExploreConfig(
                        budget=BUDGET,
                        strategy=strategy,
                        strategy_params=params,
                        jobs=jobs,
                        backend="thread" if jobs > 1 else None,
                    ),
                )
                executions += result.executions
                payloads.append(
                    json.dumps(result.to_dict(), sort_keys=True)
                )
            elapsed = time.perf_counter() - started
            cells.append(
                {
                    "strategy": label,
                    "jobs": jobs,
                    "executions": executions,
                    "seconds": elapsed,
                    "executions_per_sec": executions / elapsed,
                    "payloads": payloads,  # stripped before writing
                }
            )
    # payloads must be byte-identical across job counts per strategy
    for label in PARALLEL_STRATEGIES:
        rows = [c for c in cells if c["strategy"] == label]
        identical &= all(r["payloads"] == rows[0]["payloads"] for r in rows)
    for cell in cells:
        del cell["payloads"]
    by_jobs = {
        (c["strategy"], c["jobs"]): c["executions_per_sec"] for c in cells
    }
    speedups = [
        by_jobs[(label, 4)] / by_jobs[(label, 1)]
        for label in PARALLEL_STRATEGIES
    ]
    return {
        "cells": cells,
        "payload_identical_across_jobs": identical,
        "speedup_jobs4": max(speedups),
    }


def bench_pruning(programs) -> dict:
    """Redundancy per distinct canonical class, pruning on vs off."""
    cells = []
    totals = {True: [0, 0], False: [0, 0]}  # [distinct, pruned]
    for program in programs:
        for label in PRUNING_STRATEGIES:
            strategy, params = _variant(label)
            row = {"workload": program.name, "strategy": label}
            for on in (False, True):
                result = explore(
                    program,
                    ExploreConfig(
                        budget=BUDGET,
                        strategy=strategy,
                        strategy_params=params,
                        partial_order=on,
                    ),
                )
                key = "on" if on else "off"
                row[f"distinct_canonical_{key}"] = result.distinct_canonical
                row[f"pruned_equivalent_{key}"] = result.pruned_equivalent
                totals[on][0] += result.distinct_canonical
                totals[on][1] += result.pruned_equivalent
            off_red = (
                row["pruned_equivalent_off"] / row["distinct_canonical_off"]
            )
            on_red = (
                row["pruned_equivalent_on"] / row["distinct_canonical_on"]
            )
            row["redundancy_off"] = off_red
            row["redundancy_on"] = on_red
            row["reduction"] = (
                (off_red - on_red) / off_red if off_red else 0.0
            )
            cells.append(row)
    off = totals[False][1] / totals[False][0]
    on = totals[True][1] / totals[True][0]
    return {
        "cells": cells,
        "aggregate": {
            "redundancy_off": off,
            "redundancy_on": on,
            "reduction": (off - on) / off,
            "metric": (
                "pruned_equivalent / distinct_canonical at equal budget"
            ),
        },
    }


def main() -> int:
    programs = [
        REGISTRY.build(name).program for name in REGISTRY.names()
    ]
    workloads = {
        name: {
            label: bench_cell(REGISTRY.build(name).program, strategy, params)
            for label, strategy, params in VARIANTS
        }
        for name in REGISTRY.names()
    }

    wins: dict[str, str] = {}
    for name, cells in workloads.items():
        baseline = cells["random"]["distinct_failing_signatures"]
        best_label, best = max(
            (
                (label, cells[label]["distinct_failing_signatures"])
                for label, _, _ in VARIANTS
                if label != "random"
            ),
            key=lambda item: item[1],
        )
        if best > baseline:
            wins[name] = best_label

    parallel = bench_parallel(programs)
    pruning = bench_pruning(programs)

    payload = {
        "workloads": workloads,
        "wins": wins,
        "superiority_count": len(wins),
        "min_wins": MIN_WINS,
        "budget": BUDGET,
        "variants": [
            {"label": label, "strategy": strategy, "params": params}
            for label, strategy, params in VARIANTS
        ],
        "parallel": parallel,
        "pruning": pruning,
        "cpu_count": os.cpu_count(),
    }
    out = Path("BENCH_explore.json")
    out.write_text(json.dumps(payload, indent=2, sort_keys=True))

    header = f"{'workload':16s}" + "".join(
        f"{label:>10s}" for label, _, _ in VARIANTS
    )
    print(header)
    for name, cells in workloads.items():
        row = f"{name:16s}" + "".join(
            f"{cells[label]['distinct_failing_signatures']:>10d}"
            for label, _, _ in VARIANTS
        )
        marker = f"  <- {wins[name]} beats random" if name in wins else ""
        print(row + marker)
    print(
        f"systematic strategies beat random on {len(wins)}/"
        f"{len(workloads)} workloads at budget {BUDGET} "
        f"(floor {MIN_WINS}, cpu_count {os.cpu_count()})"
    )
    print(f"\n{'strategy':10s}{'jobs':>6s}{'exec/s':>10s}")
    for cell in parallel["cells"]:
        print(
            f"{cell['strategy']:10s}{cell['jobs']:>6d}"
            f"{cell['executions_per_sec']:>10.1f}"
        )
    print(
        f"payload identical across jobs: "
        f"{parallel['payload_identical_across_jobs']}, "
        f"speedup at jobs=4: {parallel['speedup_jobs4']:.2f}x"
    )
    agg = pruning["aggregate"]
    print(
        f"\npartial-order pruning: redundancy per distinct class "
        f"{agg['redundancy_off']:.2f} -> {agg['redundancy_on']:.2f} "
        f"({agg['reduction'] * 100:+.1f}% reduction)"
    )
    print(f"wrote {out.resolve()}")

    assert len(wins) >= MIN_WINS, (
        f"expected pct or delay to strictly beat random on at least "
        f"{MIN_WINS} workloads, got {len(wins)}: {wins}"
    )
    assert parallel["payload_identical_across_jobs"], (
        "wave dispatch changed the result payload across job counts"
    )
    # The perf acceptance gate: parallel speedup where the host has the
    # cores for it, otherwise the pruning redundancy reduction.
    speedup_ok = parallel["speedup_jobs4"] >= MIN_SPEEDUP_JOBS4
    pruning_ok = agg["reduction"] >= MIN_PRUNING_REDUCTION
    assert speedup_ok or pruning_ok, (
        f"neither acceptance branch met: speedup at jobs=4 "
        f"{parallel['speedup_jobs4']:.2f}x (floor {MIN_SPEEDUP_JOBS4}x, "
        f"cpu_count {os.cpu_count()}) and pruning reduction "
        f"{agg['reduction'] * 100:.1f}% "
        f"(floor {MIN_PRUNING_REDUCTION * 100:.0f}%)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
