"""Shard-parallel analyze: 1-shard vs multi-shard wall time.

What the tentpole promises, measured: the same trace set is ingested
twice — once into a corpus with sharding disabled (``shard_width=0``,
one bucket, necessarily serial) and once into a 16-shard corpus
(``shard_width=1``) — and the cold-matrix offline analysis is timed on
both, the multi-shard one fanning shards out across a process (or
thread, where ``fork`` is unavailable) backend with 8 workers.

The timed region is the paper's steady state — the predicate suite is
frozen once (extractor discovery is global and runs up front, outside
the timer, identically for both layouts) and every analysis round then
loads, evaluates, and builds the AC-DAG from scratch against an empty
matrix.  With a pre-frozen suite all three of those steps are per-shard
work: shard tasks load their *own* traces, evaluate them into their own
bitset matrix, and build their own partial DAG, so the whole round
parallelizes and merges deterministically.

The result lands in ``BENCH_shards.json``::

    {
      "one_shard":   {"mean_seconds": ..., "best_seconds": ...},
      "multi_shard": {"mean_seconds": ..., "best_seconds": ...},
      "speedup": <one_shard best / multi_shard best>,
      "cpu_count": ...,
      ...
    }

The speedup is a genuine parallel-efficiency number: on an N-core
machine it approaches ``min(jobs, N)`` scaled by the per-round
fork/merge overhead (≥ 2x on 4+ cores at the default corpus size).
``cpu_count`` is recorded because on a single-core machine the honest
answer is ~1x — there the merged *result* being identical to the
serial reference (asserted every round) is the half of the claim that
can be checked.

Run:  PYTHONPATH=src python benchmarks/bench_shards.py
Env:  REPRO_FULL=1 for paper-scale trace counts,
      REPRO_BENCH_JOBS / REPRO_BENCH_ROUNDS / REPRO_BENCH_WORKLOAD
      to override defaults.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.core.extraction import PredicateSuite
from repro.corpus import IncrementalPipeline, TraceStore
from repro.exec import ExecutionEngine, make_backend
from repro.harness.runner import collect
from repro.workloads.common import REGISTRY

WORKLOAD = os.environ.get("REPRO_BENCH_WORKLOAD", "kafka")
N_PER_LABEL = 4096 if os.environ.get("REPRO_FULL") else 1536
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "8"))
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))


def _build_corpus(root: Path, program, traces, shard_width: int) -> TraceStore:
    store = TraceStore.init(root, program=program.name, shard_width=shard_width)
    for trace in traces:
        store.ingest(trace)
    store.save()
    return store


def _freeze_suite(root: Path, program) -> PredicateSuite:
    """One global discovery pass — identical for either shard layout
    (extractors see the same fingerprint-sorted trace walk)."""
    store = TraceStore.open(root)
    corpus = store.labeled_corpus()
    corpus = corpus.restrict_failures(corpus.dominant_failure_signature())
    return PredicateSuite.discover(
        corpus.successes, corpus.failures, program=program
    )


def _time_cold_analyze(
    root: Path, program, suite, engine
) -> tuple[list[float], dict]:
    """Cold-matrix bootstraps (never saved, so every round re-evaluates)."""
    timings = []
    state = {}
    for _ in range(ROUNDS):
        pipeline = IncrementalPipeline(
            TraceStore.open(root), program=program, suite=suite
        )
        started = time.perf_counter()
        pipeline.bootstrap(engine=engine)
        timings.append(time.perf_counter() - started)
        assert pipeline.matrix.pair_evaluations > 0, "analysis was not cold"
        state = {
            "fully_discriminative": list(pipeline.fully),
            "dag_nodes": sorted(pipeline.dag.graph.nodes),
            "dag_edges": sorted(pipeline.dag.graph.edges),
            "pair_evaluations": pipeline.matrix.pair_evaluations,
        }
    return timings, state


def main() -> int:
    program = REGISTRY.build(WORKLOAD).program
    corpus = collect(program, n_success=N_PER_LABEL, n_fail=N_PER_LABEL)
    traces = corpus.successes + corpus.failures
    backend_name = (
        "process"
        if "fork" in multiprocessing.get_all_start_methods()
        else "thread"
    )

    workdir = Path(tempfile.mkdtemp(prefix="bench-shards-"))
    try:
        one_root = workdir / "one-shard"
        multi_root = workdir / "multi-shard"
        _build_corpus(one_root, program, traces, shard_width=0)
        multi = _build_corpus(multi_root, program, traces, shard_width=1)
        n_shards = len(multi.shard_ids)
        suite = _freeze_suite(one_root, program)

        one_timings, one_state = _time_cold_analyze(
            one_root, program, suite, None
        )

        engine = ExecutionEngine(backend=make_backend(backend_name, JOBS))
        try:
            multi_timings, multi_state = _time_cold_analyze(
                multi_root, program, suite, engine
            )
        finally:
            engine.close()

        # The correctness half of the tentpole: identical analysis state.
        assert one_state == multi_state, (
            "multi-shard analyze diverged from the single-shard reference"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    def summary(timings: list[float]) -> dict:
        return {
            "rounds": len(timings),
            "mean_seconds": sum(timings) / len(timings),
            "best_seconds": min(timings),
        }

    one, multi_summary = summary(one_timings), summary(multi_timings)
    payload = {
        "workload": WORKLOAD,
        "traces": 2 * N_PER_LABEL,
        "suite_predicates": len(suite),
        "pair_evaluations": one_state["pair_evaluations"],
        "jobs": JOBS,
        "backend": backend_name,
        "cpu_count": os.cpu_count(),
        "shards": n_shards,
        "one_shard": one,
        "multi_shard": multi_summary,
        "speedup": one["best_seconds"] / multi_summary["best_seconds"],
        "results_identical": True,
    }
    out = Path("BENCH_shards.json")
    out.write_text(json.dumps(payload, indent=2, sort_keys=True))

    print(
        f"cold-matrix analyze (frozen suite of {len(suite)} predicates), "
        f"{2 * N_PER_LABEL} traces of {WORKLOAD!r}, "
        f"{one_state['pair_evaluations']} evaluations per round:"
    )
    print(
        f"  1 shard  (serial)           : "
        f"best {one['best_seconds']:.3f}s  mean {one['mean_seconds']:.3f}s"
    )
    print(
        f"  {n_shards} shards ({backend_name} x {JOBS} jobs): "
        f"best {multi_summary['best_seconds']:.3f}s  "
        f"mean {multi_summary['mean_seconds']:.3f}s"
    )
    print(
        f"  speedup {payload['speedup']:.2f}x on {payload['cpu_count']} "
        f"CPU(s); merged analysis state identical: True"
    )
    print(f"wrote {out.resolve()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
