"""Observability overhead: the same run with telemetry off vs fully on.

Two invariants hold the whole ``repro.obs`` design together, and this
benchmark checks both on a real workload:

* **Results are untouched** — the report from an observed run is
  byte-identical to the unobserved one once the additive ``meta`` key
  (run id + metrics, which carry wall-clock) is set aside.
* **The seam is cheap** — the fully-instrumented run (JSONL run log
  with per-line flush + metrics registry + span tracing) stays within
  a small constant factor of the bare run.  CI regenerates this file
  and fails if ``overhead_ratio`` exceeds :data:`CEILING`.

The result lands in ``BENCH_obs.json`` (committed at the repo root and
uploaded by the CI ``bench-obs`` job)::

    {
      "baseline_seconds": ...,     # best-of-N, no observers
      "observed_seconds": ...,     # best-of-N, log + metrics + spans
      "overhead_ratio": ...,       # observed / baseline
      "n_events": ...,             # events written per observed run
      "reports_identical_modulo_meta": true,
      ...
    }

Run:  PYTHONPATH=src python benchmarks/bench_obs.py
Env:  REPRO_FULL=1 for paper-scale trace counts,
      REPRO_BENCH_ROUNDS to override best-of rounds.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.api import RunSpec, run
from repro.api.spec import CollectionSpec, WorkloadSpec
from repro.obs import ObsContext, ObsOptions, read_run_log

WORKLOAD = "network"
N_PER_LABEL = 128 if os.environ.get("REPRO_FULL") else 40
ROUNDS = int(os.environ.get("REPRO_BENCH_ROUNDS", "3"))
CEILING = 1.10  # the CI floor: observed/baseline must stay at or below


def _spec() -> RunSpec:
    return RunSpec(
        workload=WorkloadSpec(WORKLOAD),
        collection=CollectionSpec(
            n_success=N_PER_LABEL, n_fail=N_PER_LABEL
        ),
    )


def _canonical_modulo_meta(report) -> str:
    payload = report.to_dict()
    payload.pop("meta")
    return json.dumps(payload, sort_keys=True)


def _best(fn, rounds: int = ROUNDS):
    best, result = float("inf"), None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="bench-obs-") as tmp:
        log_dir = Path(tmp) / "runs"

        def observed_run():
            obs = ObsContext(
                ObsOptions(log_dir=str(log_dir), metrics=True)
            )
            report = run(_spec(), obs=obs)
            return obs, report

        baseline_s, baseline_report = _best(lambda: run(_spec()))
        observed_s, (obs, observed_report) = _best(observed_run)

        replay = read_run_log(obs.log_path)
        n_events = len(replay.events.events)
        identical = _canonical_modulo_meta(
            baseline_report
        ) == _canonical_modulo_meta(observed_report)

    assert identical, "observability changed the report payload"
    assert n_events > 0 and replay.metrics is not None

    ratio = observed_s / baseline_s
    payload = {
        "workload": WORKLOAD,
        "traces_per_label": N_PER_LABEL,
        "baseline_seconds": round(baseline_s, 6),
        "observed_seconds": round(observed_s, 6),
        "overhead_ratio": round(ratio, 4),
        "ceiling": CEILING,
        "n_events": n_events,
        "reports_identical_modulo_meta": identical,
        "rounds": ROUNDS,
        "cpu_count": os.cpu_count(),
    }
    out = Path("BENCH_obs.json")
    out.write_text(json.dumps(payload, indent=2, sort_keys=True))

    print(
        f"{WORKLOAD}: baseline {baseline_s:.3f}s -> observed "
        f"{observed_s:.3f}s  ({ratio:.3f}x, ceiling {CEILING}x), "
        f"{n_events} events logged"
    )
    print(f"reports identical modulo meta: {identical}")
    print(f"wrote {out.resolve()}")
    if ratio > CEILING:
        print(
            f"FAIL: overhead ratio {ratio:.3f} exceeds ceiling {CEILING}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
