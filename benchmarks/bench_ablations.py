"""Ablation benches for the design choices DESIGN.md calls out (D1-D5).

* D1 — topological vs random grouping (AID-P-B vs TAGT);
* D2 — Definition 2 observational pruning (AID vs AID-P);
* D3 — branch pruning (AID-P vs AID-P-B);
* D4 — executions per intervention round (footnote 1 repeats);
* D5 — precedence policy choice (kind-anchored vs uniform).
"""

from __future__ import annotations

import random

import pytest

from repro.core import Approach, discover
from repro.core.precedence import EndTimePolicy, KindAnchorPolicy, StartTimePolicy
from repro.harness.session import AIDSession, SessionConfig
from repro.workloads.common import REGISTRY
from repro.workloads.synthetic import generate_app, spec_for_maxt

from .conftest import shared_session


def _sweep(approach, n_apps=30, maxt=18):
    rounds = 0
    for seed in range(n_apps):
        app = generate_app(5_000_000 + seed, spec_for_maxt(maxt))
        result = discover(approach, app.dag, app.runner(), rng=random.Random(seed))
        assert set(result.causal_path) - {"F"} == set(app.causal_path)
        rounds += result.n_rounds
    return rounds


@pytest.mark.parametrize(
    "approach", [Approach.AID, Approach.AID_P, Approach.AID_P_B, Approach.TAGT]
)
def test_ablation_ladder_bench(benchmark, approach):
    benchmark.group = "ablations"
    total = benchmark.pedantic(
        lambda: _sweep(approach, n_apps=10), rounds=1, iterations=1
    )
    assert total > 0


def test_d1_topological_vs_random_order(benchmark):
    benchmark.group = "ablations"
    topo = benchmark.pedantic(
        lambda: _sweep(Approach.AID_P_B), rounds=1, iterations=1
    )
    rand = _sweep(Approach.TAGT)
    print(f"\nD1: topological {topo} vs random {rand} total rounds")
    assert topo <= rand * 1.05  # topological never clearly worse

def test_d2_observational_pruning(benchmark):
    benchmark.group = "ablations"
    with_pruning = benchmark.pedantic(
        lambda: _sweep(Approach.AID), rounds=1, iterations=1
    )
    without = _sweep(Approach.AID_P)
    print(f"D2: with Def.2 pruning {with_pruning} vs without {without}")
    assert with_pruning < without


def test_d3_branch_pruning(benchmark):
    benchmark.group = "ablations"
    with_branch = benchmark.pedantic(
        lambda: _sweep(Approach.AID_P), rounds=1, iterations=1
    )
    without = _sweep(Approach.AID_P_B)
    print(f"D3: with branch pruning {with_branch} vs without {without}")
    assert with_branch < without


def test_d4_repeats_tradeoff(benchmark):
    """More executions per round cost more runs but keep decisions sound;
    the round *counts* stay identical once repeats suffice."""
    benchmark.group = "ablations"
    workload = REGISTRY.build("npgsql")
    rounds, executions = {}, {}
    reports = {}
    for repeats in (10, 25):
        session = AIDSession(
            workload.program, SessionConfig(repeats=repeats)
        )
        if repeats == 25:
            report = benchmark.pedantic(
                lambda: session.run(Approach.AID), rounds=1, iterations=1
            )
        else:
            report = session.run(Approach.AID)
        rounds[repeats] = report.n_rounds
        executions[repeats] = report.discovery.n_executions
        assert report.n_causal == workload.paper.causal_path_len
    print(f"\nD4: repeats→(rounds, executions): "
          f"{ {r: (rounds[r], executions[r]) for r in rounds} }")
    assert executions[25] > executions[10]


@pytest.mark.parametrize(
    "policy_name,policy",
    [
        ("kind-anchored", KindAnchorPolicy()),
        ("start-time", StartTimePolicy()),
        ("end-time", EndTimePolicy()),
    ],
)
def test_d5_precedence_policy(benchmark, policy_name, policy):
    """Any conservative policy must still find the true root cause; the
    default kind-anchored policy yields the full chain."""
    benchmark.group = "ablations"
    workload = REGISTRY.build("npgsql")
    session = AIDSession(workload.program, SessionConfig(policy=policy))
    report = benchmark.pedantic(
        lambda: session.run(Approach.AID), rounds=1, iterations=1
    )
    print(f"\nD5[{policy_name}]: path length {report.n_causal}, "
          f"{report.n_rounds} rounds")
    assert report.discovery.root_cause is not None
    assert "race(_nextSlot)" in " ".join(report.causal_path)
    if policy_name == "kind-anchored":
        assert report.n_causal == workload.paper.causal_path_len


def test_probe_all_first_helps_at_junction_heavy_dags(benchmark):
    """The whole-junction opener (used inside branch pruning) pays off
    on real case studies: AID with branch pruning beats AID without."""
    benchmark.group = "ablations"
    session = shared_session("healthtelemetry")
    aid = benchmark.pedantic(
        lambda: session.run(Approach.AID), rounds=1, iterations=1
    )
    no_branch = session.run(Approach.AID_P_B)
    print(f"\nprobe-all: AID {aid.n_rounds} vs no-branch {no_branch.n_rounds}")
    assert aid.n_rounds < no_branch.n_rounds
