"""Figure 8 — synthetic sweep over MAXt (experiments E5-E6).

Average and worst-case intervention counts for TAGT and the AID variant
ladder, over generated applications with known ground truth.  The paper
runs 500 apps per setting; default here is scaled down (REPRO_FULL=1
restores paper scale).

Shape assertions (the paper's two key observations):

* topological ordering + pruning help: AID ≤ AID-P ≤ AID-P-B on average
  and AID beats TAGT clearly;
* the worst-case margin between AID and TAGT is large (paper: 52 vs 217).
"""

from __future__ import annotations

import pytest

from repro.core.variants import Approach
from repro.harness.experiments import FIGURE8_MAXT, figure8, figure8_report

_CACHE: dict = {}


def _sweep(apps_per_setting):
    if "result" not in _CACHE:
        _CACHE["result"] = figure8(
            maxt_values=FIGURE8_MAXT, apps_per_setting=apps_per_setting, seed=7
        )
    return _CACHE["result"]


@pytest.mark.parametrize("maxt", FIGURE8_MAXT)
def test_fig8_setting(benchmark, maxt, apps_per_setting):
    """Benchmark one MAXt setting (AID over a fresh app batch)."""
    import random

    from repro.core.variants import discover
    from repro.workloads.synthetic import generate_app, spec_for_maxt

    apps = [
        generate_app(9_000_000 + maxt * 997 + i, spec_for_maxt(maxt))
        for i in range(5)
    ]

    def run_aid():
        return [
            discover(Approach.AID, app.dag, app.runner(), rng=random.Random(i))
            for i, app in enumerate(apps)
        ]

    benchmark.group = "figure8"
    results = benchmark(run_aid)
    for app, result in zip(apps, results):
        assert set(result.causal_path) - {"F"} == set(app.causal_path)


def test_fig8_table_and_shape(benchmark, apps_per_setting):
    benchmark.group = "figure8"
    result = benchmark.pedantic(
        lambda: _sweep(apps_per_setting), rounds=1, iterations=1
    )
    print()
    print(figure8_report(result))
    assert result.all_exact, "every approach must recover the exact path"

    maxts = sorted(result.avg_predicates)
    large = [m for m in maxts if result.avg_predicates[m] >= 30]
    assert large, "sweep must include non-trivial settings"

    def avg(approach):
        return sum(result.cells[(m, approach)].average for m in large)

    def worst(approach):
        return max(result.cells[(m, approach)].worst for m in large)

    # The variant ladder, averaged over the larger settings.
    assert avg(Approach.AID) < avg(Approach.AID_P) < avg(Approach.AID_P_B)
    assert avg(Approach.AID) < 0.75 * avg(Approach.TAGT)
    # Worst case: AID's margin over TAGT is wide (paper: 52 vs 217).
    assert worst(Approach.AID) < 0.66 * worst(Approach.TAGT)


def test_fig8_interventions_grow_with_maxt(benchmark, apps_per_setting):
    """Bigger applications need more interventions (the x-axis trend)."""
    benchmark.group = "figure8"
    result = benchmark.pedantic(
        lambda: _sweep(apps_per_setting), rounds=1, iterations=1
    )
    maxts = sorted(result.avg_predicates)
    first, last = maxts[0], maxts[-1]
    assert result.avg_predicates[first] < result.avg_predicates[last]
    for approach in (Approach.AID, Approach.TAGT):
        assert (
            result.cells[(first, approach)].average
            < result.cells[(last, approach)].average
        )
