"""Figure 7 — the six real-world case studies (experiments E1-E4).

For every application the paper reports: the number of discriminative
predicates SD finds, the causal path length, and the interventions AID
vs. traditional adaptive group testing (TAGT) need.  Each benchmark
times AID's full intervention phase on one case study and prints the
measured row next to the paper's; the module-level check asserts the
shape properties the paper claims (AID ≤ TAGT everywhere, both exact).
"""

from __future__ import annotations

import pytest

from repro.core import Approach
from repro.harness.experiments import CaseStudyResult, figure7_report
from repro.workloads.common import REGISTRY

from .conftest import shared_session

CASES = ["npgsql", "kafka", "cosmosdb", "network", "buildandtest", "healthtelemetry"]

_RESULTS: dict[str, CaseStudyResult] = {}


def _result(name: str) -> CaseStudyResult:
    if name not in _RESULTS:
        session = shared_session(name)
        _RESULTS[name] = CaseStudyResult(
            workload=REGISTRY.build(name),
            aid=session.run(Approach.AID),
            tagt=session.run(Approach.TAGT),
        )
    return _RESULTS[name]


@pytest.mark.parametrize("name", CASES)
def test_fig7_case_study(benchmark, name):
    session = shared_session(name)
    result = _result(name)  # warm the comparison row first

    benchmark.group = "figure7"
    report = benchmark(lambda: session.run(Approach.AID))

    workload = result.workload
    assert result.matches_ground_truth
    assert result.paths_agree
    assert result.aid_rounds <= result.tagt_rounds
    assert result.causal_path_len == workload.paper.causal_path_len
    assert abs(result.sd_predicates - workload.paper.sd_predicates) <= 2
    assert report.causal_path == result.aid.causal_path


def test_fig7_table_and_shape(benchmark):
    """Print the full Figure 7 table; assert the cross-row claims."""
    rows = [_result(name) for name in CASES]
    benchmark.group = "figure7"
    report = benchmark(lambda: figure7_report(rows))
    print()
    print(report)
    # Shape: AID wins everywhere, and in aggregate by a wide margin.
    assert all(r.aid_rounds <= r.tagt_rounds for r in rows)
    total_aid = sum(r.aid_rounds for r in rows)
    total_tagt = sum(r.tagt_rounds for r in rows)
    assert total_aid < 0.6 * total_tagt
    # SD alone returns far more predicates than the causal path.
    assert all(r.sd_predicates >= 3 * r.causal_path_len for r in rows)
