"""Section 5.2 illustrative walkthrough (experiment E9).

The paper's Figure 4 example: an 11-predicate AC-DAG whose causal path
is P1 → P2 → P11 → F.  AID discovers it in 8 interventions where the
naive per-predicate strategy needs 11.  We assert AID beats naive and
recovers the exact path; absolute round counts depend on tie-breaking.
"""

from __future__ import annotations

import random

import networkx as nx

from repro.core.acdag import ACDag
from repro.core.discovery import causal_path_discovery, linear_discovery
from repro.core.intervention import RunOutcome

F = "F"


class _Oracle:
    def __init__(self, dag, causal, parents):
        self.dag = dag
        self.causal = causal
        self.parents = parents
        self._topo = dag.topological_order()

    def run_group(self, pids):
        occurred = set()
        index = {p: i for i, p in enumerate(self.causal)}
        for pid in self._topo:
            if pid == F or pid in pids:
                continue
            if pid in index:
                i = index[pid]
                if i == 0 or self.causal[i - 1] in occurred:
                    occurred.add(pid)
            else:
                parent = self.parents.get(pid)
                if parent is None or parent in occurred:
                    occurred.add(pid)
        failed = self.causal[-1] in occurred
        if failed:
            occurred.add(F)
        return [RunOutcome(observed=frozenset(occurred), failed=failed)]


def _figure4():
    edges = [
        ("P1", "P2"), ("P2", "P3"),
        ("P3", "P4"), ("P4", "P5"), ("P5", "P6"),
        ("P3", "P7"), ("P7", "P8"), ("P8", "P11"),
        ("P7", "P9"), ("P9", "P10"),
        ("P11", F), ("P6", F), ("P10", F),
    ]
    graph = nx.transitive_closure_dag(nx.DiGraph(edges))
    dag = ACDag(graph=graph, failure=F)
    causal = ["P1", "P2", "P11"]
    parents = {
        "P3": "P2", "P4": "P3", "P5": "P4", "P6": "P5",
        "P7": "P2", "P8": "P7", "P9": "P7", "P10": "P9",
    }
    return dag, _Oracle(dag, causal, parents)


def test_illustrative_walkthrough(benchmark):
    dag, oracle = _figure4()
    benchmark.group = "illustrative"
    result = benchmark(
        lambda: causal_path_discovery(dag, oracle, rng=random.Random(1))
    )
    naive = linear_discovery(dag, oracle, rng=random.Random(1))
    print(
        f"\nSection 5.2 walkthrough: AID {result.n_rounds} rounds "
        f"vs naive {naive.n_rounds} (paper: 8 vs 11)"
    )
    assert result.causal_path == ["P1", "P2", "P11", F]
    assert naive.n_rounds == 11
    assert result.n_rounds < naive.n_rounds


def test_illustrative_branch_pruning_helps(benchmark):
    benchmark.group = "illustrative"
    dag, oracle = _figure4()
    with_branch = benchmark(
        lambda: causal_path_discovery(
            dag, oracle, branch_pruning=True, rng=random.Random(1)
        )
    )
    without = causal_path_discovery(
        dag, oracle, branch_pruning=False, rng=random.Random(1)
    )
    assert with_branch.causal_path == without.causal_path
    # On an instance this small (two 2-way junctions, D=3) branch
    # pruning's junction rounds roughly break even with plain halving —
    # its payoff needs wider junctions (see bench_ablations D3).  Both
    # configurations must still beat the 11-round naive baseline.
    assert with_branch.n_rounds < 11
    assert without.n_rounds < 11
