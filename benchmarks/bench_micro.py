"""Micro-benchmarks: substrate and pipeline-stage throughput.

Not a paper artifact — these guard against performance regressions in
the pieces every experiment leans on: simulator stepping, predicate
extraction, AC-DAG construction, and suite evaluation.
"""

from __future__ import annotations

from repro.core.acdag import ACDag
from repro.core.extraction import PredicateSuite
from repro.core.statistical import StatisticalDebugger
from repro.sim import Simulator

from .conftest import shared_session


def test_micro_simulator_run(benchmark, apps_per_setting):
    session = shared_session("kafka")
    simulator = Simulator(session.program)
    benchmark.group = "micro"
    result = benchmark(lambda: simulator.run(12345))
    assert result.steps > 0


def test_micro_suite_evaluation(benchmark):
    session = shared_session("kafka")
    session.analyze()
    trace = session.collect().failures[0]
    benchmark.group = "micro"
    log = benchmark(lambda: session._suite.evaluate(trace))
    assert log.failed


def test_micro_suite_discovery(benchmark):
    session = shared_session("npgsql")
    corpus = session.collect()
    benchmark.group = "micro"
    suite = benchmark(
        lambda: PredicateSuite.discover(
            corpus.successes, corpus.failures, program=session.program
        )
    )
    assert len(suite) > 0


def test_micro_acdag_build(benchmark):
    session = shared_session("healthtelemetry")
    session.analyze()
    failed_logs = [log for log in session._logs if log.failed]
    benchmark.group = "micro"
    dag = benchmark(
        lambda: ACDag.build(
            defs=dict(session._suite.defs),
            failed_logs=failed_logs,
            failure=session.failure_pid,
            candidate_pids=session.fully_discriminative,
        )
    )
    assert len(dag) > 90


def test_micro_statistics(benchmark):
    session = shared_session("healthtelemetry")
    session.analyze()
    benchmark.group = "micro"
    stats = benchmark(lambda: StatisticalDebugger(logs=session._logs).stats())
    assert stats
