"""Benchmark-suite fixtures.

Every benchmark prints the regenerated paper artifact (table rows or
figure series) via ``print`` — run with ``-s`` to see them inline; they
are also summarized in EXPERIMENTS.md.

Set ``REPRO_FULL=1`` for paper-scale parameters (500 synthetic apps per
setting); the default is scaled for CI.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.session import AIDSession, SessionConfig
from repro.workloads.common import REGISTRY

FULL_SCALE = bool(int(os.environ.get("REPRO_FULL", "0")))
APPS_PER_SETTING = 500 if FULL_SCALE else 40

_SESSIONS: dict[str, AIDSession] = {}


def shared_session(name: str) -> AIDSession:
    """One fully-analyzed session per case study, shared by benchmarks."""
    if name not in _SESSIONS:
        workload = REGISTRY.build(name)
        session = AIDSession(workload.program, SessionConfig())
        session.build_dag()
        _SESSIONS[name] = session
    return _SESSIONS[name]


@pytest.fixture(scope="session")
def apps_per_setting() -> int:
    return APPS_PER_SETTING
