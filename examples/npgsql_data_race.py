"""Case-study walkthrough: the Npgsql pool data race (GitHub #2485).

This reproduces the paper's running example end to end, exposing each
pipeline stage (Figure 1) instead of the one-call ``repro.debug``:

1. collect 50 successful + 50 failed executions (Figure 9b traces);
2. extract predicates and compute precision/recall (Figure 9c);
3. keep the fully-discriminative set and build the AC-DAG (Section 4);
4. run causality-guided group intervention (Section 5) and compare all
   approaches' intervention counts (AID vs ablations vs TAGT);
5. print the causal explanation the paper's developers confirmed.

Run:  python examples/npgsql_data_race.py
"""

from repro import AIDSession, SessionConfig, load_workload
from repro.core import all_approaches

workload = load_workload("npgsql")
session = AIDSession(workload.program, SessionConfig())

# Stage 1: labeled corpus.
corpus = session.collect()
print(f"[1] collected {len(corpus.successes)}+{len(corpus.failures)} runs; "
      f"failure signature: {corpus.dominant_failure_signature()}")

# Stage 2: statistical debugging.
debugger = session.analyze()
stats = debugger.stats()
print(f"[2] {len(stats)} predicates extracted; top 5 by F1:")
for s in debugger.ranked()[:5]:
    print(f"      P={s.precision:.2f} R={s.recall:.2f}  {s.pid}")
print(f"    fully discriminative: {len(session.fully_discriminative)} "
      f"(paper: {workload.paper.sd_predicates})")

# Stage 3: the approximate causal DAG.
dag = session.build_dag()
levels = dag.topological_levels()
print(f"[3] AC-DAG: {len(dag)} nodes in {len(levels)} topological levels; "
      f"junction levels: {[i for i, lvl in enumerate(levels) if len(lvl) > 1]}")

# Stage 4: interventions, across every approach.
print("[4] intervention rounds per approach (paper: AID "
      f"{workload.paper.aid_interventions}, TAGT {workload.paper.tagt_interventions}):")
reference = None
for approach in all_approaches():
    report = session.run(approach)
    if reference is None:
        reference = report.causal_path
    agree = "same path" if report.causal_path == reference else "DIFFERENT PATH"
    print(f"      {approach.value:8s} {report.n_rounds:3d} rounds "
          f"({report.discovery.n_executions} executions) — {agree}")

# Stage 5: the explanation.
report = session.run("AID")
print("\n[5] " + report.explanation.render().replace("\n", "\n    "))
