"""Offline debugging with the persistent corpus: ingest once, re-analyze free.

The paper's instrumentation/extraction split (Appendix A) means traces
can be shipped from production and predicates designed after the fact.
This example collects traces from the Kafka case study, ingests them
into a content-addressed corpus store (duplicates land once), runs the
offline phase — statistical debugging + AC-DAG — from the stored logs,
then shows the two properties the corpus subsystem adds:

* a **warm re-analysis** answers every (predicate, trace) evaluation
  from the persisted bitset matrix: zero fresh evaluations;
* **incremental ingestion** patches the precision/recall counters and
  the AC-DAG under new logs, and the patched graph equals a full
  rebuild.

Run:  python examples/offline_corpus.py
"""

import shutil
import tempfile
from pathlib import Path

from repro import load_workload
from repro.core import StatisticalDebugger
from repro.core.report import render_sd_ranking
from repro.corpus import IncrementalPipeline, TraceStore
from repro.harness import collect

workload = load_workload("kafka")

# --- online phase: run the flaky application, archive the traces --------
corpus = collect(workload.program, n_success=30, n_fail=30)
archive = Path(tempfile.mkdtemp(prefix="aid-corpus-"))
store = TraceStore.init(archive, program=workload.program.name)
for trace in corpus.successes[:25] + corpus.failures[:25]:
    store.ingest(trace)
duplicate_fp, added = store.ingest(corpus.successes[0])  # same content...
assert not added  # ...stored once
store.save()
print(
    f"archived {len(store)} traces to {archive} "
    f"({store.n_pass} pass / {store.n_fail} fail; re-ingesting a "
    f"duplicate was a no-op)"
)

# --- offline phase: everything below uses only the stored logs ----------
pipeline = IncrementalPipeline(store, program=workload.program)
pipeline.bootstrap()
pipeline.save()

print()
sd = StatisticalDebugger(logs=list(pipeline.logs))
print(render_sd_ranking(sd.ranked(), pipeline.suite.defs, limit=8))

discarded = sum(
    1 for reason in pipeline.dag.discarded.values() if "no temporal" in reason
)
print()
print(
    f"AC-DAG from the archived corpus: {len(pipeline.dag)} nodes, "
    f"{discarded} predicates discarded (no temporal path to the failure)"
)

# --- warm restart: the matrix answers everything --------------------------
warm = IncrementalPipeline(TraceStore.open(archive), program=workload.program)
warm.bootstrap()
print(
    f"warm re-analysis: {warm.matrix.pair_evaluations} fresh evaluations, "
    f"{warm.matrix.pair_hits} answered from the matrix"
)

# --- incremental ingestion: patch, don't rebuild --------------------------
for trace in corpus.successes[25:] + corpus.failures[25:]:
    result = pipeline.ingest(trace)
assert pipeline.dag.structure() == pipeline.rebuild().structure()
print(
    f"ingested 10 more logs incrementally; patched AC-DAG "
    f"({len(pipeline.dag)} nodes over {pipeline.dag.n_failed_logs} failed "
    f"logs) equals a full rebuild"
)
print(
    "The intervention phase needs the live program (interventions are "
    "re-executions): run `repro debug kafka --corpus DIR` for that half."
)

# Tidy up the temp archive.
shutil.rmtree(archive)
