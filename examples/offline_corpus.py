"""Offline debugging: collect traces once, analyze from JSON later.

The paper's instrumentation/extraction split (Appendix A) means traces
can be shipped from production and predicates designed after the fact.
This example collects a corpus from the Kafka case study, serializes it
to JSON files, then runs statistical debugging and AC-DAG construction
purely from the deserialized traces — contrasting AID's causal path with
the flat ranked list classic SD would give the developer.

Run:  python examples/offline_corpus.py
"""

import json
import tempfile
from pathlib import Path

from repro import load_workload
from repro.core import ACDag, PredicateSuite, StatisticalDebugger
from repro.core.report import render_sd_ranking
from repro.harness import collect
from repro.sim.serialize import trace_from_json, trace_to_json

workload = load_workload("kafka")

# --- online phase: run the flaky application, dump traces ---------------
corpus = collect(workload.program, n_success=30, n_fail=30)
archive = Path(tempfile.mkdtemp(prefix="aid-corpus-"))
for label, traces in (("pass", corpus.successes), ("fail", corpus.failures)):
    for i, trace in enumerate(traces):
        (archive / f"{label}-{i:03d}.json").write_text(trace_to_json(trace))
print(f"archived {len(list(archive.glob('*.json')))} traces to {archive}")

# --- offline phase: everything below uses only the JSON files -----------
successes = [
    trace_from_json(p.read_text()) for p in sorted(archive.glob("pass-*"))
]
failures = [
    trace_from_json(p.read_text()) for p in sorted(archive.glob("fail-*"))
]

suite = PredicateSuite.discover(successes, failures, program=workload.program)
logs = [suite.evaluate(t) for t in successes + failures]
sd = StatisticalDebugger(logs=logs)

print()
print(render_sd_ranking(sd.ranked(), suite.defs, limit=8))

failure_pid = suite.failure_pids()[0]
fully = [
    pid for pid in sd.fully_discriminative_pids() if pid != failure_pid
]
dag = ACDag.build(
    defs=dict(suite.defs),
    failed_logs=[log for log in logs if log.failed],
    failure=failure_pid,
    candidate_pids=fully,
)
discarded = sum(
    1 for reason in dag.discarded.values() if "no temporal" in reason
)
print()
print(
    f"AC-DAG from the archived corpus: {len(dag)} nodes, "
    f"{discarded} predicates discarded (no temporal path to the failure)"
)
print(
    "The intervention phase needs the live program (interventions are "
    "re-executions); see examples/npgsql_data_race.py for that half."
)

# Tidy up the temp archive.
for p in archive.glob("*.json"):
    p.unlink()
archive.rmdir()
