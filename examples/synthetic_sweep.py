"""Synthetic benchmark sweep — a scaled-down Figure 8.

Generates applications with known ground truth across thread counts and
compares the four approaches' intervention counts (average and worst
case), verifying every approach recovers the exact causal path.

Run:  python examples/synthetic_sweep.py           (quick)
      REPRO_APPS=500 python examples/synthetic_sweep.py   (paper scale)
"""

import os

from repro.harness import figure8, figure8_report

apps = int(os.environ.get("REPRO_APPS", "60"))
result = figure8(maxt_values=(2, 10, 18, 26, 34, 42), apps_per_setting=apps)

print(figure8_report(result))
print()
print(f"apps per setting: {result.n_apps}")
print(f"every approach recovered the exact causal path: {result.all_exact}")
