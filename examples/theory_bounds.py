"""Section 6 theory, numerically: search spaces and intervention bounds.

Prints Example 3, a Figure 6 instance, validates Lemma 1 against brute
force on random series-parallel DAGs, and checks the measured synthetic
intervention counts against the Theorem 2/3 bounds.

Run:  python examples/theory_bounds.py
"""

import random

import networkx as nx

from repro.core import discover
from repro.core.theory import (
    aid_upper_bound_branch,
    aid_upper_bound_pruning,
    count_cpd_solutions,
    cpd_lower_bound,
    gt_lower_bound,
    horizontal_expansion,
    symmetric_acdag,
    symmetric_search_space,
    tagt_upper_bound,
    vertical_expansion,
)
from repro.harness import example3_report, figure6_report
from repro.workloads import generate_app, spec_for_maxt

print(example3_report())
print()
print(figure6_report(junctions=3, branches=4, chain_length=3, n_causal=4, s1=2, s2=2))

# Lemma 1 vs brute force on symmetric DAGs small enough to enumerate.
print("\nLemma 1 closed form vs brute-force chain counting:")
for j, b, n in [(1, 2, 3), (2, 2, 2), (1, 3, 2), (3, 2, 1)]:
    graph = symmetric_acdag(j, b, n)
    brute = count_cpd_solutions(graph)
    closed = symmetric_search_space(j, b, n)
    composed = vertical_expansion(*[horizontal_expansion(*[2**n] * b)] * j)
    print(f"  J={j} B={b} n={n}:  brute={brute}  closed={closed}  "
          f"composed={composed}  agree={brute == closed == composed}")

# Bounds vs measured interventions on synthetic apps.
print("\nTheorem 2/3 bounds vs measured AID rounds (synthetic apps):")
for seed in range(5):
    app = generate_app(seed, spec_for_maxt(12))
    n, d = app.n_predicates, app.n_causal
    result = discover("AID", app.dag, app.runner(), rng=random.Random(seed))
    print(f"  app {seed}: N={n:3d} D={d:2d}  measured={result.n_rounds:3d}  "
          f"GT-lower={gt_lower_bound(n, d):6.1f}  "
          f"CPD-lower(S1=2)={cpd_lower_bound(n, d, 2):6.1f}  "
          f"TAGT-upper={tagt_upper_bound(n, d):6.1f}")

print("\nBranch-pruning bound (Section 6.3.1), J log T + D log N_M vs D log(T·N_M):")
for junctions, threads, path_len, d in [(2, 8, 10, 4), (1, 16, 12, 6), (4, 4, 8, 5)]:
    with_branch = aid_upper_bound_branch(junctions, threads, path_len, d)
    without = tagt_upper_bound(threads * path_len, d)
    pruning = aid_upper_bound_pruning(threads * path_len, d, s2=3)
    print(f"  J={junctions} T={threads} N_M={path_len} D={d}: "
          f"branch={with_branch:.1f}  tagt={without:.1f}  theorem3={pruning:.1f}")
