"""Extending AID: a custom predicate type and extractor.

Predicate design is orthogonal to AID (paper Section 3.2) — the
pipeline accepts any predicate that can (a) evaluate itself on a trace
and (b) build a repairing fault injection.  This example adds a
*negative-return* predicate ("method M returns a negative number"),
plugs it into the extractor suite, and debugs a program whose built-in
vocabulary misses the root cause's cleanest description.

Run:  python examples/custom_predicates.py
"""

from dataclasses import dataclass
from typing import Optional

from repro import AIDSession, SessionConfig
from repro.core import default_extractors
from repro.core.extraction import Extractor
from repro.core.predicates import Observation, PredicateDef, PredicateKind
from repro.sim import ForceReturn, MethodSelector, Program
from repro.sim.tracing import ExecutionTrace, MethodKey


@dataclass(frozen=True, eq=False)
class NegativeReturnPredicate(PredicateDef):
    """Invocation returned a negative number (never seen in success)."""

    key: MethodKey
    repair_value: int

    @property
    def pid(self) -> str:
        return f"negret[{self.key}]"

    @property
    def kind(self) -> PredicateKind:
        return PredicateKind.WRONG_RETURN

    @property
    def description(self) -> str:
        return f"method {self.key} returns a negative number"

    def evaluate(self, trace: ExecutionTrace) -> Optional[Observation]:
        m = trace.lookup(self.key)
        if m is None or m.exception is not None:
            return None
        if not isinstance(m.return_value, int) or m.return_value >= 0:
            return None
        return Observation(m.end_time, m.end_time)

    def interventions(self):
        return (
            ForceReturn(
                selector=MethodSelector.from_key(self.key),
                value=self.repair_value,
                skip_body=False,
            ),
        )

    def is_safe(self, program: Program) -> bool:
        return self.key.method in program.readonly_methods


class NegativeReturnExtractor(Extractor):
    """Propose negret predicates for int-returning methods that go
    negative in some failed run but never in successful runs."""

    def discover(self, successes, failures):
        candidates = {}
        for trace in failures:
            for m in trace.method_executions():
                if isinstance(m.return_value, int) and m.return_value < 0:
                    candidates.setdefault(m.key, None)
        for trace in successes:
            for m in trace.method_executions():
                if m.key in candidates and isinstance(m.return_value, int):
                    candidates[m.key] = m.return_value  # repair value
        return [
            NegativeReturnPredicate(key=key, repair_value=value or 0)
            for key, value in sorted(candidates.items())
            if value is not None and value >= 0
        ]


# -- a program whose bug is best described by the custom predicate -------


def main_thread(ctx):
    yield from ctx.spawn("meter", "SampleQuota")
    yield from ctx.work(ctx.randint(0, 25))
    yield from ctx.call("ConsumeQuota", 7)
    yield from ctx.join("meter")
    return "ok"


def consume_quota(ctx, amount):
    quota = ctx.peek("quota")
    yield from ctx.write("quota", quota - amount)  # dips below zero...
    yield from ctx.work(8)
    yield from ctx.write("quota", quota - amount + 10)  # ...until refill
    return "consumed"


def sample_quota(ctx):
    yield from ctx.work(ctx.randint(0, 35))
    value = yield from ctx.call("ReadQuota")
    if value < 0:
        ctx.throw("QuotaUnderflow", f"sampled quota {value}")
    return value


def read_quota(ctx):
    value = yield from ctx.read("quota")
    yield from ctx.work(1)
    return value


program = Program(
    name="quota-meter",
    methods={
        "Main": main_thread,
        "ConsumeQuota": consume_quota,
        "SampleQuota": sample_quota,
        "ReadQuota": read_quota,
    },
    main="Main",
    shared={"quota": 3},
    readonly_methods=frozenset({"SampleQuota", "ReadQuota"}),
)


def main() -> None:
    extractors = default_extractors() + [NegativeReturnExtractor()]
    session = AIDSession(
        program,
        SessionConfig(n_success=40, n_fail=40, extractors=extractors),
    )
    report = session.run("AID")
    print(report.explanation.render())
    custom = [p for p in report.causal_path if p.startswith("negret[")]
    print(f"\ncustom negret predicates on the causal path: {custom}")


if __name__ == "__main__":
    main()
