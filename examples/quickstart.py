"""Quickstart: debug an intermittently-failing program with AID.

We write a small bank-transfer program with a classic check-then-act
race: an auditor thread reads a balance while a transfer updates it via
a two-write protocol.  Under unlucky interleavings the auditor observes
the transient negative balance and the reconciliation step crashes.

AID takes the program, collects successful and failed executions,
builds the approximate causal DAG, intervenes its way to the root cause,
and prints the causal story.

Run:  python examples/quickstart.py
"""

from repro import SessionConfig, debug
from repro.sim import Program


def main_thread(ctx):
    yield from ctx.spawn("auditor", "AuditBalance")
    yield from ctx.work(ctx.randint(0, 30))
    yield from ctx.call("Transfer", 100)
    yield from ctx.join("auditor")
    return "day-closed"


def transfer(ctx, amount):
    """Two-step transfer: debit first, credit later (the race window)."""
    balance = ctx.peek("balance") or 0
    yield from ctx.write("balance", balance - amount)  # transiently negative
    yield from ctx.work(10)  # talk to the other bank
    yield from ctx.write("balance", balance)  # credit lands
    return "transferred"


def audit_balance(ctx):
    yield from ctx.work(ctx.randint(0, 40))
    balance = yield from ctx.read("balance")  # unsynchronized read (bug)
    verdict = yield from ctx.call("Reconcile", balance)
    if verdict != "balanced":
        ctx.throw("LedgerMismatch", f"books show {balance}")
    return verdict


def reconcile(ctx, balance):
    yield from ctx.work(2)
    return "balanced" if balance >= 0 else "mismatch"


program = Program(
    name="bank-audit",
    methods={
        "Main": main_thread,
        "Transfer": transfer,
        "AuditBalance": audit_balance,
        "Reconcile": reconcile,
    },
    main="Main",
    shared={"balance": 0},
    # Only side-effect-free methods may receive value-altering
    # interventions (the paper's safety rule, Section 3.3).
    readonly_methods=frozenset({"AuditBalance", "Reconcile"}),
)


def main() -> None:
    report = debug(program, config=SessionConfig(n_success=40, n_fail=40))

    print(f"Corpus: {len(report.corpus.successes)} successful and "
          f"{len(report.corpus.failures)} failed executions")
    print(f"Statistical debugging found {report.n_sd_predicates} "
          f"fully-discriminative predicates; AID confirmed "
          f"{report.n_causal} as causal.\n")
    print(report.explanation.render())
    print("\nApproximate causal DAG (Graphviz):\n")
    print(report.dag.to_dot())


if __name__ == "__main__":
    main()
