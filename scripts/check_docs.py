#!/usr/bin/env python
"""Check that ``repro`` CLI invocations in the docs actually parse.

Walks every fenced shell code block in the given markdown files (by
default ``README.md`` and ``docs/*.md``), extracts lines that invoke
``repro`` / ``python -m repro``, and validates each subcommand name and
``--flag`` against the live argparse parser — the same information
``repro --help`` prints, but machine-checked, so documentation can
never advertise a dead flag or a renamed command.

Positional *values* (directories, workload names, seeds) are not
validated; subcommand names and option flags are.

Usage:  PYTHONPATH=src python scripts/check_docs.py [FILE...]
Exit status: 0 when every invocation parses, 1 otherwise.
"""

from __future__ import annotations

import argparse
import re
import shlex
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import build_parser  # noqa: E402

#: fence languages treated as shell (everything else is skipped)
SHELL_LANGUAGES = {"", "sh", "bash", "shell", "console", "text"}
FENCE = re.compile(r"^```(\w*)\s*$")


def iter_shell_lines(text: str):
    """(line_number, line) for every line inside a shell code fence."""
    language = None
    for number, line in enumerate(text.splitlines(), start=1):
        fence = FENCE.match(line.strip())
        if fence is not None:
            language = fence.group(1).lower() if language is None else None
            continue
        if language is not None and language in SHELL_LANGUAGES:
            yield number, line


def extract_invocation(line: str) -> list[str] | None:
    """The tokens after ``repro`` when the line invokes the CLI."""
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    # drop trailing shell comments (predicate ids never appear in
    # shell examples, so a bare " # " is always a comment)
    stripped = re.split(r"\s+#\s", stripped, maxsplit=1)[0]
    try:
        tokens = shlex.split(stripped)
    except ValueError:
        return None
    for index, token in enumerate(tokens):
        if token == "repro":
            preceded_by = tokens[index - 1] if index else None
            # `repro ...`, `python -m repro ...`, `ENV=val repro ...`
            if (
                index == 0
                or preceded_by == "-m"
                or "=" in preceded_by
                or preceded_by in ("$", "exec")
            ):
                return tokens[index + 1 :]
    return None


def subcommands(parser: argparse.ArgumentParser) -> dict:
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return dict(action.choices)
    return {}


def option_strings(parser: argparse.ArgumentParser) -> set[str]:
    options: set[str] = set()
    for action in parser._actions:
        options.update(action.option_strings)
    return options


def check_invocation(tokens: list[str], parser) -> list[str]:
    """Validate one invocation's command path and flags; returns errors."""
    errors: list[str] = []
    current = parser
    path = "repro"
    pending = subcommands(current)
    for token in tokens:
        if token.startswith("-"):
            flag = token.split("=", 1)[0]
            if flag not in option_strings(current):
                errors.append(f"`{path}` has no flag {flag!r}")
        elif pending:
            if token in pending:
                current = pending[token]
                path = f"{path} {token}"
                pending = subcommands(current)
            else:
                errors.append(f"`{path}` has no subcommand {token!r}")
                pending = {}
        # other tokens are positional values / flag arguments
    return errors


def check_file(path: Path, parser) -> list[str]:
    errors: list[str] = []
    for number, line in iter_shell_lines(path.read_text()):
        tokens = extract_invocation(line)
        if tokens is None:
            continue
        for problem in check_invocation(tokens, parser):
            errors.append(f"{path}:{number}: {problem}: {line.strip()}")
    return errors


def main(argv: list[str] | None = None) -> int:
    files = [Path(p) for p in (argv if argv is not None else sys.argv[1:])]
    if not files:
        files = sorted((REPO_ROOT / "docs").glob("*.md"))
        files.append(REPO_ROOT / "README.md")
    parser = build_parser()
    errors: list[str] = []
    checked = 0
    for path in files:
        if not path.exists():
            errors.append(f"{path}: no such file")
            continue
        checked += 1
        errors.extend(check_file(path, parser))
    for problem in errors:
        print(problem, file=sys.stderr)
    print(
        f"checked {checked} file(s): "
        + ("OK" if not errors else f"{len(errors)} problem(s)")
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
