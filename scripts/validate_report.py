#!/usr/bin/env python
"""Validate a ``repro run --json`` payload against the report schema.

CI's smoke test pipes the CLI's JSON output through this: the emitted
report must parse and satisfy the versioned schema
(:data:`repro.core.report.REPORT_SCHEMA_VERSION`), so the schema can
never drift from what the CLI actually prints.

Usage:  PYTHONPATH=src python scripts/validate_report.py report.json
        repro run spec.toml --json | python scripts/validate_report.py -
Exit status: 0 when the payload is a valid report, 1 otherwise.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.report import (  # noqa: E402
    REPORT_SCHEMA_VERSION,
    validate_report_dict,
)


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    if len(argv) != 1:
        print("usage: validate_report.py <report.json | ->", file=sys.stderr)
        return 1
    text = (
        sys.stdin.read() if argv[0] == "-" else Path(argv[0]).read_text()
    )
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        print(f"not valid JSON: {exc}", file=sys.stderr)
        return 1
    problems = validate_report_dict(payload)
    for problem in problems:
        print(problem, file=sys.stderr)
    label = argv[0] if argv[0] != "-" else "stdin"
    print(
        f"{label}: "
        + (
            f"valid version-{REPORT_SCHEMA_VERSION} report "
            f"(kind {payload.get('kind')!r}, "
            f"program {payload.get('program')!r})"
            if not problems
            else f"{len(problems)} problem(s)"
        )
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
